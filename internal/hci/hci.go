// Package hci implements the Host Controller Interface of the simulated
// Bluetooth stack: the command/event machine through which the host drives
// inquiry, connection establishment, role switching and disconnection.
//
// Its two failure modes are the paper's highest-impact system errors (HCI
// accounts for 49.9 % of user-level failures in Table 2):
//
//   - command transmission timeout — the command never reaches the firmware,
//     typically when a connection request or accept is issued on a busy
//     device (the cause of most "Connect failed" and nearly all "Sw role
//     request failed" user failures);
//   - command for unknown connection handle — a command races a handle that
//     does not exist yet or is already torn down (one leg of the "Bind
//     failed" race).
package hci

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Handle is an HCI connection handle.
type Handle uint16

// InvalidHandle is the zero, never-allocated handle.
const InvalidHandle Handle = 0

// Config parameterises the HCI host's timing and fault behaviour.
type Config struct {
	// CommandTimeout is the host-side guard on command completion. The
	// paper's masking analysis suggests raising it to suppress "Sw role
	// request failed"; recovery.MaskSwitchRoleRetry models that effect.
	CommandTimeout sim.Time

	// BaseLatency is the firmware execution time of a simple command.
	BaseLatency sim.Time

	// ConnSetupTime is the baseband paging time for connection setup.
	ConnSetupTime sim.Time

	// TimeoutProbIdle is the probability that a command transmission times
	// out on an otherwise idle device (residual firmware flakiness).
	TimeoutProbIdle float64

	// TimeoutProbBusy is the same probability while the controller is busy
	// with paging/inquiry — the dominant case in the paper.
	TimeoutProbBusy float64

	// InquiryDuration is the length of a standard inquiry scan.
	InquiryDuration sim.Time

	// InquiryFailProb is the probability the inquiry procedure terminates
	// abnormally (the unexplained "Inquiry/scan failed" of Table 2, for
	// which no error-failure relationship was found).
	InquiryFailProb float64
}

// DefaultConfig returns calibrated HCI parameters.
func DefaultConfig() Config {
	return Config{
		CommandTimeout:  5 * sim.Second,
		BaseLatency:     2 * sim.Millisecond,
		ConnSetupTime:   640 * sim.Millisecond, // ~1 page-scan interval
		TimeoutProbIdle: 2e-5,
		TimeoutProbBusy: 4.2e-2,
		InquiryDuration: 10240 * sim.Millisecond, // 8 x 1.28 s trains
		InquiryFailProb: 2e-4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.CommandTimeout <= 0 || c.BaseLatency <= 0 || c.ConnSetupTime <= 0 || c.InquiryDuration <= 0:
		return fmt.Errorf("hci: non-positive timing parameter")
	case c.TimeoutProbIdle < 0 || c.TimeoutProbIdle > 1 ||
		c.TimeoutProbBusy < 0 || c.TimeoutProbBusy > 1 ||
		c.InquiryFailProb < 0 || c.InquiryFailProb > 1:
		return fmt.Errorf("hci: probability out of range")
	default:
		return nil
	}
}

// Sink receives system-level error notifications for the system log.
type Sink func(code core.ErrorCode, op string)

// Result reports one HCI command.
type Result struct {
	Dur sim.Time // host-observed command duration
	Err error    // nil, or *core.SimError
}

// Host is the HCI layer of one node.
type Host struct {
	cfg   Config
	node  string
	tr    transport.Transport
	rng   *rand.Rand
	clock func() sim.Time
	sink  Sink

	nextHandle Handle
	handles    map[Handle]string // handle -> peer
	busyUntil  sim.Time

	// Counters for tests and diagnostics.
	timeouts, invalidHandles int
}

// NewHost builds the HCI layer. sink may be nil (errors still returned).
func NewHost(cfg Config, node string, tr transport.Transport, clock func() sim.Time, rng *rand.Rand, sink Sink) *Host {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if tr == nil || clock == nil {
		panic("hci: nil transport or clock")
	}
	return &Host{
		cfg: cfg, node: node, tr: tr, rng: rng, clock: clock, sink: sink,
		handles: make(map[Handle]string),
	}
}

// Node reports the host name.
func (h *Host) Node() string { return h.node }

// Stats reports fault counters.
func (h *Host) Stats() (timeouts, invalidHandles int) {
	return h.timeouts, h.invalidHandles
}

// Busy reports whether the controller is mid-procedure at the current time.
func (h *Host) Busy() bool { return h.clock() < h.busyUntil }

// SetBusy marks the controller busy until the given instant; overlapping
// windows extend. The piconet layer calls this when a peer initiates paging
// toward this controller.
func (h *Host) SetBusy(until sim.Time) {
	if until > h.busyUntil {
		h.busyUntil = until
	}
}

// ValidHandle reports whether the handle currently names a connection.
func (h *Host) ValidHandle(hd Handle) bool {
	_, ok := h.handles[hd]
	return ok
}

// Peer reports the remote node for a handle.
func (h *Host) Peer(hd Handle) (string, bool) {
	p, ok := h.handles[hd]
	return p, ok
}

// OpenHandles reports the number of live connection handles.
func (h *Host) OpenHandles() int { return len(h.handles) }

// fail raises and logs a SimError.
func (h *Host) fail(code core.ErrorCode, op string, dur sim.Time) Result {
	if h.sink != nil {
		h.sink(code, op)
	}
	switch code {
	case core.CodeHCICommandTimeout:
		h.timeouts++
	case core.CodeHCIInvalidHandle:
		h.invalidHandles++
	}
	return Result{Dur: dur, Err: core.NewSimError(code, op, h.node)}
}

// submit pushes a command through the transport and models the transmission
// timeout window. It returns the accumulated latency and an error when the
// command never reached the firmware.
func (h *Host) submit(op string, size int) (sim.Time, error) {
	res := h.tr.Deliver(size)
	if res.Err != nil {
		// Transport-level fault (BCSP/USB): the transport already carries
		// the right code; surface it as this command's failure.
		if h.sink != nil {
			if se, ok := res.Err.(*core.SimError); ok {
				h.sink(se.Code, op)
			}
		}
		return res.Latency, res.Err
	}
	p := h.cfg.TimeoutProbIdle
	if h.Busy() {
		p = h.cfg.TimeoutProbBusy
	}
	if h.rng.Float64() < p {
		r := h.fail(core.CodeHCICommandTimeout, op, res.Latency+h.cfg.CommandTimeout)
		return r.Dur, r.Err
	}
	return res.Latency + h.cfg.BaseLatency, nil
}

// Inquiry runs the inquiry procedure (device discovery).
func (h *Host) Inquiry() Result {
	lat, err := h.submit("hci.inquiry", 5)
	if err != nil {
		return Result{Dur: lat, Err: err}
	}
	h.SetBusy(h.clock() + h.cfg.InquiryDuration)
	if h.rng.Float64() < h.cfg.InquiryFailProb {
		// Abnormal termination: no specific system error accompanies it
		// (the paper found no error-failure relationship for inquiry).
		return Result{
			Dur: lat + h.cfg.InquiryDuration/2,
			Err: core.NewSimError(core.CodeUnknown, "hci.inquiry", h.node),
		}
	}
	return Result{Dur: lat + h.cfg.InquiryDuration}
}

// CreateConnection pages peer and allocates a connection handle.
func (h *Host) CreateConnection(peer string) (Handle, Result) {
	lat, err := h.submit("hci.create_conn", 13)
	if err != nil {
		return InvalidHandle, Result{Dur: lat, Err: err}
	}
	h.SetBusy(h.clock() + h.cfg.ConnSetupTime)
	h.nextHandle++
	hd := h.nextHandle
	h.handles[hd] = peer
	return hd, Result{Dur: lat + h.cfg.ConnSetupTime}
}

// AcceptConnection is the responder side of connection setup.
func (h *Host) AcceptConnection(peer string) (Handle, Result) {
	lat, err := h.submit("hci.accept_conn", 7)
	if err != nil {
		return InvalidHandle, Result{Dur: lat, Err: err}
	}
	h.SetBusy(h.clock() + h.cfg.ConnSetupTime)
	h.nextHandle++
	hd := h.nextHandle
	h.handles[hd] = peer
	return hd, Result{Dur: lat}
}

// Disconnect tears down a connection handle.
func (h *Host) Disconnect(hd Handle) Result {
	if !h.ValidHandle(hd) {
		return h.fail(core.CodeHCIInvalidHandle, "hci.disconnect", h.cfg.BaseLatency)
	}
	lat, err := h.submit("hci.disconnect", 6)
	if err != nil {
		return Result{Dur: lat, Err: err}
	}
	delete(h.handles, hd)
	return Result{Dur: lat}
}

// SwitchRole issues the master/slave switch on a handle. The request leg
// (transmission to firmware) failing is the paper's "Sw role request
// failed"; the caller distinguishes it from command-completion failure by
// the error code.
func (h *Host) SwitchRole(hd Handle) Result {
	if !h.ValidHandle(hd) {
		return h.fail(core.CodeHCIInvalidHandle, "hci.switch_role", h.cfg.BaseLatency)
	}
	lat, err := h.submit("hci.switch_role", 9)
	if err != nil {
		return Result{Dur: lat, Err: err}
	}
	// The switch itself completes within a TDD frame pair.
	return Result{Dur: lat + 10*sim.Slot}
}

// CommandOnHandle issues a generic handle-scoped command on behalf of an
// upper layer (L2CAP uses it for signalling). A stale or not-yet-valid
// handle produces the invalid-handle error.
func (h *Host) CommandOnHandle(op string, hd Handle, size int) Result {
	if !h.ValidHandle(hd) {
		return h.fail(core.CodeHCIInvalidHandle, op, h.cfg.BaseLatency)
	}
	lat, err := h.submit(op, size)
	return Result{Dur: lat, Err: err}
}

// Reset drops all connection state (the HCI_Reset command), used by the
// "BT stack reset" SIRA.
func (h *Host) Reset() {
	h.handles = make(map[Handle]string)
	h.busyUntil = 0
}
