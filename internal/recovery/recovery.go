// Package recovery implements the paper's fault-tolerance machinery: the
// seven Software-Implemented Recovery Actions (SIRAs) attempted in cascade
// upon failure detection, the per-failure effectiveness model behind
// Table 3, the four usage scenarios compared in Table 4, and the error
// masking strategies of §4.
//
// The effectiveness model works by persistence depth: every failure carries
// a latent depth d ∈ 1..7 — the cheapest SIRA that clears it — sampled from
// a per-failure-type distribution calibrated against Table 3 (anchored on
// the paper's explicit numbers: NAP-not-found→stack reset 61.4 %, packet
// loss→socket reset 5.9 %, connect-failed ≥ app-restart 84.6 %; the
// remaining cells are a documented reconstruction, see ARCHITECTURE.md).
// Action j clears any failure of depth ≤ j, so the cascade stops at the
// first action ≥ d and the failure's severity is exactly d.
package recovery

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/stats"
)

// Scenario is one of the four recovery regimes of Table 4.
type Scenario int

// Scenarios, in Table 4 column order.
const (
	ScenarioRebootOnly   Scenario = iota + 1 // user reboots on every failure
	ScenarioAppReboot                        // app restart, then reboot
	ScenarioSIRAs                            // the full automated cascade
	ScenarioSIRAsMasking                     // cascade plus error masking
)

// Scenarios lists all four regimes.
func Scenarios() []Scenario {
	return []Scenario{ScenarioRebootOnly, ScenarioAppReboot, ScenarioSIRAs, ScenarioSIRAsMasking}
}

// String names the scenario as in Table 4.
func (s Scenario) String() string {
	switch s {
	case ScenarioRebootOnly:
		return "Only Reboot"
	case ScenarioAppReboot:
		return "App restart and Reboot"
	case ScenarioSIRAs:
		return "With only SIRAs"
	case ScenarioSIRAsMasking:
		return "SIRAs and masking"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Masked reports whether the scenario applies the error-masking strategies.
func (s Scenario) Masked() bool { return s == ScenarioSIRAsMasking }

// Automated reports whether the scenario runs the SIRA cascade (as opposed
// to emulating manual user recovery).
func (s Scenario) Automated() bool {
	return s == ScenarioSIRAs || s == ScenarioSIRAsMasking
}

// depthWeights is the Table 3 effectiveness matrix: for each user failure,
// the probability (in %) that each SIRA is the one that clears it. Rows sum
// to 100. Data mismatch has no recovery defined (the workload does not run
// the cascade for it), so it carries no row.
var depthWeights = map[core.UserFailure][core.NumRecoveryActions]float64{
	//                         sock   conn   stack  app    mapp   boot   mboot
	core.UFInquiryScanFailed:       {0.0, 0.0, 34.5, 55.8, 3.9, 5.4, 0.4},
	core.UFNAPNotFound:             {0.0, 0.5, 61.4, 5.0, 1.2, 30.8, 1.1},
	core.UFSDPSearchFailed:         {0.0, 7.2, 39.8, 30.0, 1.8, 20.1, 1.1},
	core.UFConnectFailed:           {0.0, 0.5, 14.9, 55.8, 2.2, 25.6, 1.0},
	core.UFPANConnectFailed:        {0.0, 40.1, 35.7, 11.3, 0.0, 12.5, 0.4},
	core.UFBindFailed:              {0.0, 2.0, 62.4, 30.0, 3.8, 1.7, 0.1},
	core.UFSwitchRoleRequestFailed: {0.0, 17.5, 48.2, 14.0, 2.0, 17.3, 1.0},
	core.UFSwitchRoleCommandFailed: {0.0, 46.4, 20.4, 28.4, 2.0, 2.4, 0.4},
	core.UFPacketLoss:              {5.9, 63.7, 25.8, 3.3, 0.5, 0.7, 0.1},
}

// DepthWeights exposes (a copy of) the effectiveness row for a failure type
// and whether a cascade applies to it at all.
func DepthWeights(f core.UserFailure) ([core.NumRecoveryActions]float64, bool) {
	w, ok := depthWeights[f]
	return w, ok
}

// SampleDepth draws the persistence depth for a failure. The second return
// is false for failures with no defined recovery (data mismatch).
func SampleDepth(f core.UserFailure, rng *rand.Rand) (core.RecoveryAction, bool) {
	w, ok := depthWeights[f]
	if !ok {
		return core.RANone, false
	}
	idx := stats.WeightedChoice(rng, w[:])
	return core.RecoveryAction(idx + 1), true
}

// Timing computes SIRA durations for a given host OS. Durations carry ±20 %
// jitter so TTR distributions have realistic spread.
type Timing struct {
	OS  stack.OSInfo
	rng *rand.Rand
}

// NewTiming builds the duration model for a host.
func NewTiming(os stack.OSInfo, rng *rand.Rand) *Timing {
	return &Timing{OS: os, rng: rng}
}

// Duration components: restarting the application includes re-establishing
// the PAN session; reboots include shutdown; a manual user reboot adds the
// user's own environment-restoration work.
const (
	appRestartOverhead = 8 * sim.Second
	shutdownOverhead   = 60 * sim.Second
	userRebootOverhead = 160 * sim.Second
)

// jitter applies ±20 % spread.
func (t *Timing) jitter(d sim.Time) sim.Time {
	f := 0.8 + t.rng.Float64()*0.4
	return sim.Time(float64(d) * f)
}

// Duration reports the cost of performing one SIRA on this host. The
// multiple variants model the expected number of repetitions (up to 3 app
// restarts, up to 5 reboots per the paper's definitions).
func (t *Timing) Duration(a core.RecoveryAction) sim.Time {
	switch a {
	case core.RAIPSocketReset:
		return t.jitter(600 * sim.Millisecond)
	case core.RABTConnectionReset:
		return t.jitter(4 * sim.Second)
	case core.RABTStackReset:
		return t.jitter(6500 * sim.Millisecond)
	case core.RAAppRestart:
		return t.jitter(appRestartOverhead + t.OS.AppRestartTime)
	case core.RAMultiAppRestart:
		// 2-3 consecutive restarts.
		n := 2 + t.rng.IntN(2)
		return t.jitter(sim.Time(n) * (appRestartOverhead + t.OS.AppRestartTime))
	case core.RASystemReboot:
		// Shutdown + boot + application come-back.
		return t.jitter(shutdownOverhead + t.OS.BootTime + t.OS.AppRestartTime)
	case core.RAMultiSystemReboot:
		// 2-5 consecutive reboots.
		n := 2 + t.rng.IntN(4)
		return t.jitter(sim.Time(n) * (shutdownOverhead + t.OS.BootTime + t.OS.AppRestartTime))
	default:
		panic(fmt.Sprintf("recovery: no duration for action %v", a))
	}
}

// UserRebootDuration is the cost of a manual user reboot in scenarios 1-2:
// the user notices, shuts down, boots, restarts the application and
// re-establishes the environment. Per the paper's upper-bound assumption the
// user thinking time is zero.
func (t *Timing) UserRebootDuration() sim.Time {
	return t.jitter(userRebootOverhead + t.OS.BootTime + t.OS.AppRestartTime)
}

// Outcome reports one recovery run.
type Outcome struct {
	// Action is the SIRA (or manual action) that cleared the failure;
	// RANone when nothing did.
	Action core.RecoveryAction
	// TTR is the cumulative time spent recovering, including failed
	// attempts.
	TTR sim.Time
	// Recovered reports whether the failure was cleared.
	Recovered bool
	// Attempts counts the actions tried.
	Attempts int
}

// Cascade executes recovery for one host under a scenario policy.
type Cascade struct {
	host   *stack.Host
	timing *Timing
	rng    *rand.Rand
}

// NewCascade builds the recovery engine for a host.
func NewCascade(host *stack.Host, rng *rand.Rand) *Cascade {
	if host == nil {
		panic("recovery: nil host")
	}
	return &Cascade{host: host, timing: NewTiming(host.OS, rng), rng: rng}
}

// Timing exposes the duration model (for the dependability analysis).
func (c *Cascade) Timing() *Timing { return c.timing }

// applySideEffects performs the state changes of an action.
func (c *Cascade) applySideEffects(a core.RecoveryAction) {
	switch a {
	case core.RAIPSocketReset:
		// Socket teardown/rebuild touches no stack state.
	case core.RABTConnectionReset:
		c.host.BNEP.DestroyChannel()
	case core.RABTStackReset:
		c.host.ResetStack()
	case core.RAAppRestart, core.RAMultiAppRestart:
		c.host.BNEP.DestroyChannel()
	case core.RASystemReboot, core.RAMultiSystemReboot:
		c.host.Reboot()
	}
}

// Run executes the scenario's recovery policy for a failure of type f whose
// persistence depth is sampled internally. For data mismatch (no recovery
// defined) it returns an unrecovered outcome with zero TTR.
func (c *Cascade) Run(scenario Scenario, f core.UserFailure) Outcome {
	depth, ok := SampleDepth(f, c.rng)
	if !ok {
		return Outcome{Action: core.RANone, Recovered: false}
	}
	return c.RunWithDepth(scenario, depth)
}

// RunWithDepth executes the policy against a known persistence depth.
func (c *Cascade) RunWithDepth(scenario Scenario, depth core.RecoveryAction) Outcome {
	var out Outcome
	try := func(a core.RecoveryAction, dur sim.Time) bool {
		out.Attempts++
		out.TTR += dur
		if a >= depth {
			c.applySideEffects(a)
			out.Action = a
			out.Recovered = true
			return true
		}
		return false
	}

	switch scenario {
	case ScenarioRebootOnly:
		// The user reboots; a depth-7 failure needs repeated reboots.
		if try(core.RASystemReboot, c.timing.UserRebootDuration()) {
			return out
		}
		try(core.RAMultiSystemReboot, c.timing.Duration(core.RAMultiSystemReboot))
		return out
	case ScenarioAppReboot:
		if try(core.RAAppRestart, c.timing.Duration(core.RAAppRestart)) {
			return out
		}
		if try(core.RASystemReboot, c.timing.UserRebootDuration()) {
			return out
		}
		try(core.RAMultiSystemReboot, c.timing.Duration(core.RAMultiSystemReboot))
		return out
	case ScenarioSIRAs, ScenarioSIRAsMasking:
		for _, a := range core.RecoveryActions() {
			if try(a, c.timing.Duration(a)) {
				return out
			}
		}
		return out
	default:
		panic(fmt.Sprintf("recovery: unknown scenario %v", scenario))
	}
}

// Masking is the set of error-masking strategies of §4. All strategies are
// enabled in the SIRAs+masking scenario.
type Masking struct {
	// SDPBeforeConnect always performs the SDP search before a PAN
	// connection, avoiding the stale-cache failures (96.5 % of PAN connect
	// failures).
	SDPBeforeConnect bool
	// BindWait waits out T_C and T_H before binding (with the instrumented
	// hotplug notification), eliminating bind failures.
	BindWait bool
	// RetrySwitchRole repeats a failed switch-role command up to 2 times,
	// 1 s apart — enough for the underlying transient to disappear.
	RetrySwitchRole bool
	// RetryNAPNotFound applies the same repetition to NAP-not-found.
	RetryNAPNotFound bool
	// RetryTransient extends the repetition strategy to the high-volume
	// failure classes (connect, SDP search, PAN connect, packet loss): the
	// masking-instrumented stack cleans transient state and retries the
	// operation. Only shallow causes clear this way — a retry masks the
	// failure exactly when its persistence depth is within MaskDepthLimit,
	// so deep (severe) failures survive masking, which is why the paper's
	// masked-scenario MTTR rises while its MTTF triples.
	RetryTransient bool
}

// maskPolicy bounds what the retry masking can clear per failure class:
// Limit is the deepest persistence a masked retry overcomes, Effectiveness
// the probability the retry sequence actually lands it. The packet-loss /
// SDP / PAN retries operate at the connection level (anything a lightweight
// in-stack cleanup fixes); the connect retry — the enhanced API's longer
// timeout plus transparent session re-establishment — reaches app-restart
// depth but only clears about half its targets, which is what leaves the
// masked scenario's residual failures severe (the paper's MTTR rises from
// 70.94 s to 120.84 s for exactly this reason).
var maskPolicy = map[core.UserFailure]struct {
	Limit         core.RecoveryAction
	Effectiveness float64
}{
	core.UFPacketLoss:       {core.RABTStackReset, 0.82},
	core.UFSDPSearchFailed:  {core.RAAppRestart, 0.85},
	core.UFPANConnectFailed: {core.RABTStackReset, 0.85},
	core.UFConnectFailed:    {core.RASystemReboot, 0.78},
}

// TryMask samples a failure's persistence depth and decides whether the
// retry masking clears it. It returns the sampled depth (for the cascade,
// when unmasked) and the masking verdict. Failures without a depth model
// (data mismatch) or without a masking policy are never masked.
func TryMask(f core.UserFailure, rng *rand.Rand) (depth core.RecoveryAction, masked bool) {
	depth, ok := SampleDepth(f, rng)
	if !ok {
		return core.RANone, false
	}
	pol, ok := maskPolicy[f]
	if !ok {
		return depth, false
	}
	if depth <= pol.Limit && rng.Float64() < pol.Effectiveness {
		return depth, true
	}
	return depth, false
}

// AllMasking returns the full strategy set.
func AllMasking() Masking {
	return Masking{SDPBeforeConnect: true, BindWait: true,
		RetrySwitchRole: true, RetryNAPNotFound: true, RetryTransient: true}
}

// NoMasking returns the empty strategy set.
func NoMasking() Masking { return Masking{} }

// MaskRetries is the paper's retry count for the masking strategies.
const MaskRetries = 2

// MaskRetryWait is the pause between masking retries.
const MaskRetryWait = sim.Second

// Retry runs op up to 1+retries times, pausing wait between attempts, and
// returns the final error (nil on success) plus the time consumed by the
// pauses (the op itself reports its own durations). successOn reports which
// attempt succeeded (1-based; 0 if none).
func Retry(retries int, wait sim.Time, op func() error) (err error, waited sim.Time, successOn int) {
	for attempt := 1; attempt <= retries+1; attempt++ {
		if err = op(); err == nil {
			return nil, waited, attempt
		}
		if attempt <= retries {
			waited += wait
		}
	}
	return err, waited, 0
}
