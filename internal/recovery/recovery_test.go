package recovery

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/transport"
)

func testRNG(a uint64) *rand.Rand { return rand.New(rand.NewPCG(a, a+1)) }

func testHost(t *testing.T) *stack.Host {
	t.Helper()
	world := sim.NewWorld(77)
	var connID uint64
	cfg := stack.DefaultHostConfig(5)
	return stack.NewHost(cfg, world, "Verde",
		stack.OSInfo{Family: "Linux", Distribution: "Mandrake",
			BootTime: 110 * sim.Second, AppRestartTime: 9 * sim.Second},
		5, false, false,
		transport.NewH4(transport.H4Config{BaudRate: 115200}), &connID, nil)
}

func TestDepthWeightsRowsSumTo100(t *testing.T) {
	covered := 0
	for _, f := range core.UserFailures() {
		w, ok := DepthWeights(f)
		if !ok {
			if f != core.UFDataMismatch {
				t.Errorf("%v has no effectiveness row", f)
			}
			continue
		}
		covered++
		sum := 0.0
		for _, x := range w {
			if x < 0 {
				t.Errorf("%v has negative weight", f)
			}
			sum += x
		}
		if math.Abs(sum-100) > 0.5 {
			t.Errorf("%v row sums to %v, want 100", f, sum)
		}
	}
	if covered != core.NumUserFailures-1 {
		t.Errorf("%d rows, want %d (all but data mismatch)", covered, core.NumUserFailures-1)
	}
}

func TestDepthWeightsPaperAnchors(t *testing.T) {
	// The three cells the paper states explicitly.
	w, _ := DepthWeights(core.UFNAPNotFound)
	if w[core.RABTStackReset-1] != 61.4 {
		t.Errorf("NAP-not-found stack reset = %v, want 61.4", w[core.RABTStackReset-1])
	}
	w, _ = DepthWeights(core.UFPacketLoss)
	if w[core.RAIPSocketReset-1] != 5.9 {
		t.Errorf("packet-loss socket reset = %v, want 5.9", w[core.RAIPSocketReset-1])
	}
	w, _ = DepthWeights(core.UFConnectFailed)
	expensive := w[core.RAAppRestart-1] + w[core.RAMultiAppRestart-1] +
		w[core.RASystemReboot-1] + w[core.RAMultiSystemReboot-1]
	if math.Abs(expensive-84.6) > 0.5 {
		t.Errorf("connect-failed expensive share = %v, want 84.6", expensive)
	}
}

func TestSampleDepthDistribution(t *testing.T) {
	r := testRNG(1)
	counts := make([]int, core.NumRecoveryActions+1)
	const n = 100000
	for i := 0; i < n; i++ {
		d, ok := SampleDepth(core.UFPacketLoss, r)
		if !ok {
			t.Fatal("packet loss must have a depth model")
		}
		counts[int(d)]++
	}
	gotSock := float64(counts[int(core.RAIPSocketReset)]) / n * 100
	if math.Abs(gotSock-5.9) > 0.6 {
		t.Errorf("sampled socket-reset share = %v, want ~5.9", gotSock)
	}
	gotConn := float64(counts[int(core.RABTConnectionReset)]) / n * 100
	if math.Abs(gotConn-63.7) > 1.5 {
		t.Errorf("sampled conn-reset share = %v, want ~63.7", gotConn)
	}
}

func TestSampleDepthDataMismatch(t *testing.T) {
	if _, ok := SampleDepth(core.UFDataMismatch, testRNG(2)); ok {
		t.Error("data mismatch must have no recovery")
	}
}

func TestTimingDurationsOrdered(t *testing.T) {
	tm := NewTiming(stack.OSInfo{BootTime: 100 * sim.Second, AppRestartTime: 10 * sim.Second}, testRNG(3))
	var prev sim.Time
	for _, a := range core.RecoveryActions() {
		var mean sim.Time
		for i := 0; i < 200; i++ {
			mean += tm.Duration(a)
		}
		mean /= 200
		if mean <= prev {
			t.Errorf("%v mean duration %v not above previous %v (costs must increase)", a, mean, prev)
		}
		prev = mean
	}
}

func TestUserRebootCostsMoreThanSIRAReboot(t *testing.T) {
	tm := NewTiming(stack.OSInfo{BootTime: 100 * sim.Second, AppRestartTime: 10 * sim.Second}, testRNG(4))
	var user, sira sim.Time
	for i := 0; i < 200; i++ {
		user += tm.UserRebootDuration()
		sira += tm.Duration(core.RASystemReboot)
	}
	if user <= sira {
		t.Errorf("manual reboot (%v) should cost more than the automated one (%v)", user/200, sira/200)
	}
}

func TestCascadeStopsAtDepth(t *testing.T) {
	c := NewCascade(testHost(t), testRNG(5))
	for depth := core.RAIPSocketReset; depth <= core.RAMultiSystemReboot; depth++ {
		out := c.RunWithDepth(ScenarioSIRAs, depth)
		if !out.Recovered {
			t.Fatalf("depth %v not recovered", depth)
		}
		if out.Action != depth {
			t.Errorf("depth %v cleared by %v", depth, out.Action)
		}
		if out.Attempts != int(depth) {
			t.Errorf("depth %v took %d attempts", depth, out.Attempts)
		}
	}
}

func TestCascadeTTRAccumulates(t *testing.T) {
	c := NewCascade(testHost(t), testRNG(6))
	shallow := c.RunWithDepth(ScenarioSIRAs, core.RAIPSocketReset)
	deep := c.RunWithDepth(ScenarioSIRAs, core.RASystemReboot)
	if deep.TTR <= shallow.TTR {
		t.Errorf("deep TTR %v should exceed shallow %v", deep.TTR, shallow.TTR)
	}
}

func TestScenarioRebootOnly(t *testing.T) {
	c := NewCascade(testHost(t), testRNG(7))
	out := c.RunWithDepth(ScenarioRebootOnly, core.RAIPSocketReset)
	if !out.Recovered || out.Action != core.RASystemReboot || out.Attempts != 1 {
		t.Errorf("reboot-only outcome = %+v", out)
	}
	// Depth 7 forces multiple reboots.
	out = c.RunWithDepth(ScenarioRebootOnly, core.RAMultiSystemReboot)
	if !out.Recovered || out.Action != core.RAMultiSystemReboot || out.Attempts != 2 {
		t.Errorf("reboot-only depth-7 outcome = %+v", out)
	}
}

func TestScenarioAppReboot(t *testing.T) {
	c := NewCascade(testHost(t), testRNG(8))
	out := c.RunWithDepth(ScenarioAppReboot, core.RABTStackReset)
	if !out.Recovered || out.Action != core.RAAppRestart {
		t.Errorf("app-restart should clear depth<=4: %+v", out)
	}
	out = c.RunWithDepth(ScenarioAppReboot, core.RASystemReboot)
	if !out.Recovered || out.Action != core.RASystemReboot || out.Attempts != 2 {
		t.Errorf("depth-6 should need the follow-up reboot: %+v", out)
	}
}

func TestCascadeSideEffects(t *testing.T) {
	host := testHost(t)
	c := NewCascade(host, testRNG(9))
	before := host.Reboots()
	c.RunWithDepth(ScenarioSIRAs, core.RASystemReboot)
	if host.Reboots() != before+1 {
		t.Error("system reboot SIRA should reboot the host")
	}
}

func TestRunDataMismatchNoRecovery(t *testing.T) {
	c := NewCascade(testHost(t), testRNG(10))
	out := c.Run(ScenarioSIRAs, core.UFDataMismatch)
	if out.Recovered || out.TTR != 0 || out.Action != core.RANone {
		t.Errorf("data mismatch outcome = %+v", out)
	}
}

func TestScenarioProperties(t *testing.T) {
	if len(Scenarios()) != 4 {
		t.Fatal("4 scenarios expected")
	}
	if !ScenarioSIRAsMasking.Masked() || ScenarioSIRAs.Masked() {
		t.Error("masking flags wrong")
	}
	if !ScenarioSIRAs.Automated() || ScenarioRebootOnly.Automated() {
		t.Error("automation flags wrong")
	}
	for _, s := range Scenarios() {
		if s.String() == "" {
			t.Error("empty scenario name")
		}
	}
}

func TestMaskingSets(t *testing.T) {
	all := AllMasking()
	if !all.SDPBeforeConnect || !all.BindWait || !all.RetrySwitchRole || !all.RetryNAPNotFound {
		t.Error("AllMasking should enable everything")
	}
	none := NoMasking()
	if none.SDPBeforeConnect || none.BindWait || none.RetrySwitchRole || none.RetryNAPNotFound {
		t.Error("NoMasking should disable everything")
	}
}

func TestRetry(t *testing.T) {
	failures := 2
	err, waited, on := Retry(MaskRetries, MaskRetryWait, func() error {
		if failures > 0 {
			failures--
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry should have succeeded: %v", err)
	}
	if on != 3 {
		t.Errorf("succeeded on attempt %d, want 3", on)
	}
	if waited != 2*MaskRetryWait {
		t.Errorf("waited %v, want %v", waited, 2*MaskRetryWait)
	}

	err, waited, on = Retry(1, sim.Second, func() error { return errors.New("permanent") })
	if err == nil || on != 0 {
		t.Error("permanent failure should exhaust retries")
	}
	if waited != sim.Second {
		t.Errorf("waited %v, want 1s", waited)
	}
}
