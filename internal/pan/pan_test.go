package pan

import (
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/bnep"
	"repro/internal/core"
	"repro/internal/hci"
	"repro/internal/l2cap"
	"repro/internal/sdp"
	"repro/internal/sim"
	"repro/internal/transport"
)

// fixture wires a PANU ("Verde") and a NAP ("Giallo") with fault-free
// defaults; tests mutate the configs to force specific failures.
type fixture struct {
	panu   *PANU
	nap    *NAP
	host   *hci.Host
	now    sim.Time
	connID uint64

	panuLogs []core.ErrorCode
	napLogs  []core.ErrorCode
}

type fixtureOpts struct {
	pan  func(*Config)
	bnep func(*bnep.Config)
	hci  func(*hci.Config)
}

func newFixture(t *testing.T, opts fixtureOpts) *fixture {
	t.Helper()
	f := &fixture{}
	clock := func() sim.Time { return f.now }
	panuSink := func(code core.ErrorCode, op string) { f.panuLogs = append(f.panuLogs, code) }
	napSink := func(code core.ErrorCode, op string) { f.napLogs = append(f.napLogs, code) }

	hcfg := hci.DefaultConfig()
	hcfg.TimeoutProbIdle, hcfg.TimeoutProbBusy, hcfg.InquiryFailProb = 0, 0, 0
	if opts.hci != nil {
		opts.hci(&hcfg)
	}
	f.host = hci.NewHost(hcfg, "Verde",
		transport.NewH4(transport.H4Config{BaudRate: 115200}),
		clock, rand.New(rand.NewPCG(31, 32)), panuSink)

	napHCICfg := hci.DefaultConfig()
	napHCICfg.TimeoutProbIdle, napHCICfg.TimeoutProbBusy, napHCICfg.InquiryFailProb = 0, 0, 0
	napHost := hci.NewHost(napHCICfg, "Giallo",
		transport.NewH4(transport.H4Config{BaudRate: 115200}),
		clock, rand.New(rand.NewPCG(33, 34)), napSink)

	lcfg := l2cap.DefaultConfig()
	lcfg.UnexpectedFrameProb, lcfg.DataFaultPerPacket = 0, 0
	mux := l2cap.NewMux(lcfg, "Verde", f.host, rand.New(rand.NewPCG(35, 36)), panuSink)

	bcfg := bnep.DefaultConfig()
	bcfg.ModuleMissingProb, bcfg.OccupiedProb, bcfg.AddFailedProb = 0, 0, 0
	if opts.bnep != nil {
		opts.bnep(&bcfg)
	}
	bsvc := bnep.NewService(bcfg, "Verde", clock, rand.New(rand.NewPCG(37, 38)), panuSink)

	scfg := sdp.DefaultServerConfig()
	scfg.RefuseProb, scfg.TimeoutProb, scfg.MissProb = 0, 0, 0
	server := sdp.NewServer(scfg, "Giallo", rand.New(rand.NewPCG(39, 40)), napSink)
	f.nap = NewNAP("Giallo", napHost, server)

	pcfg := DefaultConfig()
	pcfg.StaleCacheFailProb, pcfg.FreshFailProb = 0, 0
	pcfg.SwitchReqExtraTimeout = 0
	pcfg.SwitchCmdL2CAPProb, pcfg.SwitchCmdBNEPProb, pcfg.SwitchCmdHCIProb = 0, 0, 0
	if opts.pan != nil {
		opts.pan(&pcfg)
	}
	f.panu = NewPANU(pcfg, "Verde", f.host, mux, bsvc, &f.connID,
		rand.New(rand.NewPCG(41, 42)), panuSink)
	return f
}

func (f *fixture) baseband(t *testing.T) hci.Handle {
	t.Helper()
	hd, res := f.host.CreateConnection("Giallo")
	if res.Err != nil {
		t.Fatalf("baseband link: %v", res.Err)
	}
	f.now += 10 * sim.Second
	return hd
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.StaleCacheFailProb = -0.1
	if bad.Validate() == nil {
		t.Error("negative probability should fail")
	}
}

func TestConnectHappyPath(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	conn, res := f.panu.Connect(f.baseband(t), f.nap, true)
	if res.Err != nil {
		t.Fatalf("connect: %v (stage %v)", res.Err, res.Stage)
	}
	if conn == nil || !conn.Open || conn.ID == 0 {
		t.Fatalf("conn = %+v", conn)
	}
	if conn.MasterIsNAP {
		t.Error("role should not be switched yet")
	}
	if f.nap.ActiveSlaves() != 1 {
		t.Errorf("ActiveSlaves = %d", f.nap.ActiveSlaves())
	}
	if conn.Iface == nil || conn.Iface.Name != "bnep0" {
		t.Error("no BNEP interface")
	}

	sres := f.panu.SwitchRole(conn, f.nap)
	if sres.Err != nil {
		t.Fatalf("switch: %v", sres.Err)
	}
	if !conn.MasterIsNAP {
		t.Error("switch did not record the new role")
	}

	f.panu.Disconnect(conn, f.nap)
	if conn.Open || f.nap.ActiveSlaves() != 0 {
		t.Error("disconnect did not release state")
	}
}

func TestConnectL2CAPStageFailure(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	// Dead handle: the failure must classify as the L2CAP stage.
	conn, res := f.panu.Connect(hci.Handle(555), f.nap, true)
	if conn != nil || res.Err == nil {
		t.Fatal("expected failure")
	}
	if res.Stage != StageL2CAP {
		t.Errorf("stage = %v, want l2cap", res.Stage)
	}
}

func TestConnectStaleCacheFailure(t *testing.T) {
	f := newFixture(t, fixtureOpts{pan: func(c *Config) { c.StaleCacheFailProb = 1 }})
	conn, res := f.panu.Connect(f.baseband(t), f.nap, false) // SDP skipped
	if conn != nil || res.Err == nil {
		t.Fatal("expected stale-cache failure")
	}
	if res.Stage != StagePAN {
		t.Errorf("stage = %v, want pan", res.Stage)
	}
	var se *core.SimError
	if !errors.As(res.Err, &se) || se.Code != core.CodeSDPServiceMissing {
		t.Fatalf("want SDP evidence, got %v", res.Err)
	}
	// The evidence must land on the NAP's system log.
	if len(f.napLogs) != 1 || f.napLogs[0] != core.CodeSDPServiceMissing {
		t.Errorf("NAP logs = %v", f.napLogs)
	}
	// With a fresh search the same connection succeeds.
	conn, res = f.panu.Connect(f.baseband(t), f.nap, true)
	if res.Err != nil {
		t.Fatalf("fresh connect failed: %v", res.Err)
	}
	if conn == nil || !conn.Open {
		t.Fatal("no connection")
	}
}

func TestConnectBNEPStageFailure(t *testing.T) {
	f := newFixture(t, fixtureOpts{bnep: func(c *bnep.Config) { c.ModuleMissingProb = 1 }})
	conn, res := f.panu.Connect(f.baseband(t), f.nap, true)
	if conn != nil {
		t.Fatal("conn allocated despite BNEP failure")
	}
	if res.Stage != StagePAN {
		t.Errorf("stage = %v, want pan", res.Stage)
	}
	var se *core.SimError
	if !errors.As(res.Err, &se) || se.Code != core.CodeBNEPModuleMissing {
		t.Fatalf("want BNEP module missing, got %v", res.Err)
	}
	if f.nap.ActiveSlaves() != 0 {
		t.Error("failed connect must not occupy a NAP slot")
	}
}

func TestNAPSlotExhaustion(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	conns := make([]*Conn, 0, MaxSlaves)
	for i := 0; i < MaxSlaves; i++ {
		conn, res := f.panu.Connect(f.baseband(t), f.nap, true)
		if res.Err != nil {
			t.Fatalf("connect %d: %v", i, res.Err)
		}
		conns = append(conns, conn)
		// Each new PAN connection needs a free bnep slot on a real PANU;
		// release the local interface to isolate the NAP-side bound.
		f.panu.bnep.DestroyChannel()
	}
	if f.nap.ActiveSlaves() != MaxSlaves {
		t.Fatalf("ActiveSlaves = %d", f.nap.ActiveSlaves())
	}
	conn, res := f.panu.Connect(f.baseband(t), f.nap, true)
	if conn != nil || res.Err == nil {
		t.Fatal("8th slave admitted")
	}
	if f.nap.Rejected() != 1 {
		t.Errorf("Rejected = %d", f.nap.Rejected())
	}
	f.panu.Disconnect(conns[0], f.nap)
	if f.nap.ActiveSlaves() != MaxSlaves-1 {
		t.Errorf("slot not released: %d", f.nap.ActiveSlaves())
	}
}

func TestSwitchRoleRequestLegFailure(t *testing.T) {
	f := newFixture(t, fixtureOpts{pan: func(c *Config) { c.SwitchReqExtraTimeout = 1 }})
	conn, res := f.panu.Connect(f.baseband(t), f.nap, true)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	sres := f.panu.SwitchRole(conn, f.nap)
	if sres.Err == nil {
		t.Fatal("expected request-leg failure")
	}
	if !RequestLegFailed(sres.Err) {
		t.Errorf("RequestLegFailed = false for %v", sres.Err)
	}
	if conn.MasterIsNAP {
		t.Error("failed switch must not change roles")
	}
}

func TestSwitchRoleCommandLegFailures(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		want   core.ErrorCode
	}{
		{"l2cap", func(c *Config) { c.SwitchCmdL2CAPProb = 1 }, core.CodeL2CAPUnexpectedFrame},
		{"bnep", func(c *Config) { c.SwitchCmdBNEPProb = 1 }, core.CodeBNEPOccupied},
		{"hci", func(c *Config) { c.SwitchCmdHCIProb = 1 }, core.CodeHCIInvalidHandle},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := newFixture(t, fixtureOpts{pan: tt.mutate})
			conn, res := f.panu.Connect(f.baseband(t), f.nap, true)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			sres := f.panu.SwitchRole(conn, f.nap)
			var se *core.SimError
			if !errors.As(sres.Err, &se) || se.Code != tt.want {
				t.Fatalf("got %v, want %v", sres.Err, tt.want)
			}
			if RequestLegFailed(sres.Err) {
				t.Error("command-leg failure misclassified as request leg")
			}
		})
	}
}

func TestSwitchRoleOnClosedConn(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	if res := f.panu.SwitchRole(nil, f.nap); res.Err == nil {
		t.Error("switch on nil conn should fail")
	}
	conn, _ := f.panu.Connect(f.baseband(t), f.nap, true)
	f.panu.Disconnect(conn, f.nap)
	if res := f.panu.SwitchRole(conn, f.nap); res.Err == nil {
		t.Error("switch on closed conn should fail")
	}
}

func TestDisconnectIdempotent(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	conn, _ := f.panu.Connect(f.baseband(t), f.nap, true)
	f.panu.Disconnect(conn, f.nap)
	// Second disconnect is a no-op, not a crash.
	if res := f.panu.Disconnect(conn, f.nap); res.Err != nil {
		t.Errorf("double disconnect: %v", res.Err)
	}
}

func TestConnIDsAreUnique(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	seen := map[uint64]bool{}
	for i := 0; i < 5; i++ {
		conn, res := f.panu.Connect(f.baseband(t), f.nap, true)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if seen[conn.ID] {
			t.Fatalf("duplicate conn ID %d", conn.ID)
		}
		seen[conn.ID] = true
		f.panu.Disconnect(conn, f.nap)
	}
}

func TestStageStrings(t *testing.T) {
	for _, s := range []Stage{StageNone, StageL2CAP, StagePAN, StageSwitch, StageTransfer} {
		if s.String() == "" {
			t.Errorf("empty stage name for %d", int(s))
		}
	}
}
