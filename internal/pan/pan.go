// Package pan implements the Bluetooth PAN profile on top of L2CAP and BNEP:
// the PANU (client) connection procedure toward a NAP (Network Access
// Point), the NAP's slot management (a piconet master handles at most seven
// active slaves), and the master/slave role switch performed right after
// connection establishment so the NAP remains piconet master.
//
// The user-failure taxonomy splits across this package's stages:
//
//   - "Connect failed"          — the L2CAP connection to the NAP fails;
//   - "PAN connect failed"      — L2CAP is up but the BNEP/PAN setup fails.
//     96.5 % of these strike when the workload skipped the SDP search and
//     connected from a stale cached record (the paper's headline masking
//     insight: always search before connecting);
//   - "Sw role request failed"  — the switch-role request never reaches the
//     master (HCI command transmission timeout, 91.1 %);
//   - "Sw role command failed"  — the request is accepted but the command
//     completes abnormally (BCSP reordering on PDAs, unexpected L2CAP
//     frames, stale HCI handles, occupied BNEP devices).
package pan

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"repro/internal/bnep"
	"repro/internal/core"
	"repro/internal/hci"
	"repro/internal/l2cap"
	"repro/internal/sdp"
	"repro/internal/sim"
)

// MaxSlaves is the piconet's active-slave bound.
const MaxSlaves = 7

// Stage identifies where in the PAN procedure an operation failed, so the
// workload can classify the user-level failure.
type Stage int

// Stages of the PAN connection procedure.
const (
	StageNone     Stage = iota
	StageL2CAP          // establishing the L2CAP connection
	StagePAN            // BNEP/PAN setup over the established L2CAP link
	StageSwitch         // master/slave role switch
	StageTransfer       // data transfer
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageNone:
		return "none"
	case StageL2CAP:
		return "l2cap"
	case StagePAN:
		return "pan"
	case StageSwitch:
		return "switch"
	case StageTransfer:
		return "transfer"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Result reports a PAN operation with its failing stage.
type Result struct {
	Dur   sim.Time
	Stage Stage
	Err   error
}

// Config parameterises the PAN profile's fault behaviour.
type Config struct {
	// StaleCacheFailProb is the probability that a PAN connection attempted
	// from a cached (unsearched) NAP record fails against the live service
	// registry. The masking strategy — always perform the SDP search first —
	// eliminates exactly this term.
	StaleCacheFailProb float64

	// FreshFailProb is the residual PAN-setup failure probability when the
	// record is fresh.
	FreshFailProb float64

	// SwitchReqExtraTimeout adds to the HCI command-timeout probability for
	// the switch-role request leg (its transmission crosses the piconet
	// during the fragile post-connect window).
	SwitchReqExtraTimeout float64

	// SwitchCmdL2CAPProb / SwitchCmdBNEPProb / SwitchCmdHCIProb are the
	// per-switch probabilities that the command leg is disrupted by an
	// unexpected L2CAP frame, an occupied BNEP device, or a stale HCI
	// handle respectively. (BCSP disruption needs no knob: it arises from
	// the transport itself on the PDA nodes.)
	SwitchCmdL2CAPProb float64
	SwitchCmdBNEPProb  float64
	SwitchCmdHCIProb   float64

	// RoleSwitchTime is the nominal duration of a successful switch.
	RoleSwitchTime sim.Time
}

// DefaultConfig returns calibrated PAN parameters.
func DefaultConfig() Config {
	return Config{
		StaleCacheFailProb:    1.3e-3,
		FreshFailProb:         4.7e-5,
		SwitchReqExtraTimeout: 2e-6,
		SwitchCmdL2CAPProb:    1e-6,
		SwitchCmdBNEPProb:     6e-6,
		SwitchCmdHCIProb:      4e-6,
		RoleSwitchTime:        20 * sim.Slot,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	for _, p := range []float64{
		c.StaleCacheFailProb, c.FreshFailProb, c.SwitchReqExtraTimeout,
		c.SwitchCmdL2CAPProb, c.SwitchCmdBNEPProb, c.SwitchCmdHCIProb,
	} {
		if p < 0 || p > 1 {
			return fmt.Errorf("pan: probability %v out of range", p)
		}
	}
	if c.RoleSwitchTime <= 0 {
		return fmt.Errorf("pan: non-positive role switch time")
	}
	return nil
}

// Conn is an established PAN connection from a PANU to a NAP.
type Conn struct {
	ID        uint64 // global connection identifier (for log correlation)
	Handle    hci.Handle
	NAPHandle hci.Handle
	Channel   *l2cap.Channel
	Iface     *bnep.Interface
	// MasterIsNAP reports whether the role switch has completed, leaving
	// the NAP as piconet master.
	MasterIsNAP bool
	Open        bool
}

// NAP is the network-access-point side: it owns the service record, accepts
// incoming connections, and bounds active slaves.
type NAP struct {
	Node string

	HCI *hci.Host
	SDP *sdp.Server

	slots map[uint64]string // conn ID -> peer

	rejected int
}

// NewNAP builds the NAP role for a node and registers its service record.
func NewNAP(node string, h *hci.Host, s *sdp.Server) *NAP {
	if h == nil || s == nil {
		panic("pan: NAP needs HCI and SDP")
	}
	n := &NAP{Node: node, HCI: h, SDP: s, slots: make(map[uint64]string)}
	s.Register(sdp.Record{Class: sdp.UUIDNAP, PSM: l2cap.PSMBNEP, Name: "Network Access Point"})
	return n
}

// ActiveSlaves reports the number of connected PANUs.
func (n *NAP) ActiveSlaves() int { return len(n.slots) }

// Rejected reports the count of slot-exhaustion rejections.
func (n *NAP) Rejected() int { return n.rejected }

// accept runs the NAP-side admission: slot check plus the HCI accept (whose
// busy timeouts log on the NAP's system log — the "From NAP" columns of
// Table 2).
func (n *NAP) accept(connID uint64, peer string) (hci.Handle, error) {
	if len(n.slots) >= MaxSlaves {
		n.rejected++
		return hci.InvalidHandle, core.NewSimError(core.CodeHCICommandTimeout, "nap.slots_full", n.Node)
	}
	hd, res := n.HCI.AcceptConnection(peer)
	if res.Err != nil {
		return hci.InvalidHandle, res.Err
	}
	n.slots[connID] = peer
	return hd, nil
}

// release frees the slot for a connection.
func (n *NAP) release(connID uint64) {
	if _, ok := n.slots[connID]; ok {
		delete(n.slots, connID)
	}
	// Releasing an unknown connection is harmless: teardown can race reset.
}

// PANU is the client side of the profile for one node.
type PANU struct {
	cfg  Config
	node string

	hci  *hci.Host
	mux  *l2cap.Mux
	bnep *bnep.Service
	rng  *rand.Rand
	sink hci.Sink

	nextConnID *uint64 // shared across the testbed for unique conn IDs
}

// NewPANU builds the PANU role. nextConnID supplies unique connection IDs;
// pass a testbed-wide counter so logs correlate across nodes.
func NewPANU(cfg Config, node string, h *hci.Host, mux *l2cap.Mux, b *bnep.Service,
	nextConnID *uint64, rng *rand.Rand, sink hci.Sink) *PANU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if h == nil || mux == nil || b == nil || nextConnID == nil {
		panic("pan: PANU missing a dependency")
	}
	return &PANU{cfg: cfg, node: node, hci: h, mux: mux, bnep: b,
		nextConnID: nextConnID, rng: rng, sink: sink}
}

// Connect runs the PAN connection procedure toward nap over an established
// baseband link (HCI handle hd). freshSDP reports whether the workload
// performed the SDP search this cycle; connecting from a cached record is
// where nearly all PAN-connect failures come from.
func (p *PANU) Connect(hd hci.Handle, nap *NAP, freshSDP bool) (*Conn, Result) {
	// Link-level admission at the NAP first: the master answers the page
	// and accepts the connection. A busy NAP controller times the accept
	// out, which the paper classifies as an L2CAP-establishment failure
	// ("Connect failed", with the HCI evidence in the NAP's system log).
	*p.nextConnID++
	id := *p.nextConnID
	napHd, err := nap.accept(id, p.node)
	if err != nil {
		return nil, Result{Stage: StageL2CAP, Err: err}
	}

	ch, lres := p.mux.Connect(hd, l2cap.PSMBNEP)
	if lres.Err != nil {
		nap.release(id)
		nap.HCI.Disconnect(napHd)
		return nil, Result{Dur: lres.Dur, Stage: StageL2CAP, Err: lres.Err}
	}
	total := lres.Dur

	// BNEP setup validates the connection against the NAP's live service
	// registry. A stale cached record fails that validation; the NAP's SDP
	// daemon logs the mismatch (error propagation: the evidence lands in
	// the NAP's system log, per Table 2's SDP column for PAN connect).
	failProb := p.cfg.FreshFailProb
	if !freshSDP {
		failProb = p.cfg.StaleCacheFailProb
	}
	if p.rng.Float64() < failProb {
		if nap.SDP != nil {
			nap.SDP.LogStaleRecord()
		}
		p.mux.Disconnect(ch)
		nap.release(id)
		nap.HCI.Disconnect(napHd)
		return nil, Result{Dur: total, Stage: StagePAN,
			Err: core.NewSimError(core.CodeSDPServiceMissing, "pan.connect", p.node)}
	}

	iface, bres := p.bnep.CreateChannel(ch)
	total += bres.Dur
	if bres.Err != nil {
		p.mux.Disconnect(ch)
		nap.release(id)
		nap.HCI.Disconnect(napHd)
		return nil, Result{Dur: total, Stage: StagePAN, Err: bres.Err}
	}

	return &Conn{ID: id, Handle: hd, NAPHandle: napHd, Channel: ch,
		Iface: iface, Open: true}, Result{Dur: total, Stage: StageNone}
}

// SwitchRole performs the master/slave switch so the NAP becomes piconet
// master. The two legs fail independently:
//
//   - request leg: the HCI switch-role command transmission can time out
//     (surfaces as "Sw role request failed");
//   - command leg: the switch executes but completes abnormally from one of
//     several transient causes (surfaces as "Sw role command failed").
//
// The returned Stage is StageSwitch for both; the caller distinguishes the
// legs with RequestLegFailed.
func (p *PANU) SwitchRole(conn *Conn, nap *NAP) Result {
	if conn == nil || !conn.Open {
		return Result{Stage: StageSwitch,
			Err: core.NewSimError(core.CodeHCIInvalidHandle, "pan.switch_role", p.node)}
	}
	// Request leg.
	res := p.hci.SwitchRole(conn.Handle)
	total := res.Dur
	if res.Err != nil {
		return Result{Dur: total, Stage: StageSwitch, Err: res.Err}
	}
	if p.rng.Float64() < p.cfg.SwitchReqExtraTimeout {
		if p.sink != nil {
			p.sink(core.CodeHCICommandTimeout, "pan.switch_role_req")
		}
		return Result{Dur: total, Stage: StageSwitch,
			Err: core.NewSimError(core.CodeHCICommandTimeout, "pan.switch_role_req", p.node)}
	}

	// Command leg: completion crosses the transport again (BCSP reordering
	// on the PDAs bites here), and several transient conditions can abort
	// the switch.
	cres := p.hci.CommandOnHandle("pan.switch_role_cmd", conn.Handle, 9)
	total += cres.Dur
	if cres.Err != nil {
		return Result{Dur: total, Stage: StageSwitch, Err: cres.Err}
	}
	switch u := p.rng.Float64(); {
	case u < p.cfg.SwitchCmdL2CAPProb:
		if p.sink != nil {
			p.sink(core.CodeL2CAPUnexpectedFrame, "pan.switch_role_cmd")
		}
		return Result{Dur: total, Stage: StageSwitch,
			Err: core.NewSimError(core.CodeL2CAPUnexpectedFrame, "pan.switch_role_cmd", p.node)}
	case u < p.cfg.SwitchCmdL2CAPProb+p.cfg.SwitchCmdBNEPProb:
		if p.sink != nil {
			p.sink(core.CodeBNEPOccupied, "pan.switch_role_cmd")
		}
		return Result{Dur: total, Stage: StageSwitch,
			Err: core.NewSimError(core.CodeBNEPOccupied, "pan.switch_role_cmd", p.node)}
	case u < p.cfg.SwitchCmdL2CAPProb+p.cfg.SwitchCmdBNEPProb+p.cfg.SwitchCmdHCIProb:
		if p.sink != nil {
			p.sink(core.CodeHCIInvalidHandle, "pan.switch_role_cmd")
		}
		return Result{Dur: total, Stage: StageSwitch,
			Err: core.NewSimError(core.CodeHCIInvalidHandle, "pan.switch_role_cmd", p.node)}
	}
	conn.MasterIsNAP = true
	return Result{Dur: total + p.cfg.RoleSwitchTime, Stage: StageNone}
}

// RequestLegFailed reports whether a switch-role failure was the request leg
// (command transmission timeout) as opposed to abnormal command completion.
func RequestLegFailed(err error) bool {
	var se *core.SimError
	if !errors.As(err, &se) {
		return false
	}
	return se.Code == core.CodeHCICommandTimeout
}

// Abort tears a connection down quietly after a failure: state is dropped
// on both sides without running the signalling handshakes (which would fail
// against already-broken state and pollute the logs with teardown noise).
func (p *PANU) Abort(conn *Conn, nap *NAP) {
	if conn == nil || !conn.Open {
		return
	}
	conn.Open = false
	p.bnep.DestroyChannel()
	if conn.Channel != nil && conn.Channel.State == l2cap.StateOpen {
		conn.Channel.State = l2cap.StateClosed
	}
	p.mux.Reset()
	if p.hci.ValidHandle(conn.Handle) {
		p.hci.Reset()
	}
	nap.release(conn.ID)
	if nap.HCI.ValidHandle(conn.NAPHandle) {
		nap.HCI.Disconnect(conn.NAPHandle)
	}
}

// Disconnect tears the PAN connection down: BNEP interface, L2CAP channel,
// baseband link, NAP slot.
func (p *PANU) Disconnect(conn *Conn, nap *NAP) Result {
	if conn == nil || !conn.Open {
		return Result{Stage: StageNone}
	}
	conn.Open = false
	p.bnep.DestroyChannel()
	res := p.mux.Disconnect(conn.Channel)
	hres := p.hci.Disconnect(conn.Handle)
	nap.release(conn.ID)
	nap.HCI.Disconnect(conn.NAPHandle)
	return Result{Dur: res.Dur + hres.Dur, Stage: StageNone}
}
