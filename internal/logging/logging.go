// Package logging implements the two failure-data sources of the paper's
// collection methodology: the Test Log, holding user-level failure reports
// written by the instrumented BlueTest workload, and the System Log, holding
// system-level error entries registered by stack components and daemons.
//
// Both logs support in-memory accumulation (for analysis pipelines), line-
// oriented serialisation (JSON-lines, for the LogAnalyzer daemon to ship to
// the central repository), and parsing back.
package logging

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestLog is a node's user-level failure log.
type TestLog struct {
	mu      sync.Mutex
	node    string
	reports []core.UserReport
}

// NewTestLog creates the Test Log for a node.
func NewTestLog(node string) *TestLog { return &TestLog{node: node} }

// Node reports the owning node.
func (l *TestLog) Node() string { return l.node }

// Append records one user-level failure report.
func (l *TestLog) Append(r core.UserReport) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reports = append(l.reports, r)
}

// Len reports the number of records.
func (l *TestLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.reports)
}

// Snapshot returns a copy of all records.
func (l *TestLog) Snapshot() []core.UserReport {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]core.UserReport, len(l.reports))
	copy(out, l.reports)
	return out
}

// Drain returns all records and empties the log (the LogAnalyzer's periodic
// extraction).
func (l *TestLog) Drain() []core.UserReport {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.reports
	l.reports = nil
	return out
}

// SystemLog is a node's system-level error log.
type SystemLog struct {
	mu      sync.Mutex
	node    string
	entries []core.SystemEntry
}

// NewSystemLog creates the System Log for a node.
func NewSystemLog(node string) *SystemLog { return &SystemLog{node: node} }

// Node reports the owning node.
func (l *SystemLog) Node() string { return l.node }

// Append records one system-level entry.
func (l *SystemLog) Append(e core.SystemEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, e)
}

// Len reports the number of entries.
func (l *SystemLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Snapshot returns a copy of all entries.
func (l *SystemLog) Snapshot() []core.SystemEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]core.SystemEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Drain returns all entries and empties the log.
func (l *SystemLog) Drain() []core.SystemEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.entries
	l.entries = nil
	return out
}

// Sink returns a stack.Sink-compatible closure that stamps (code, op) pairs
// with the node identity and the current virtual time and appends them to
// the system log. testbed and clock identify the campaign context.
func (l *SystemLog) Sink(testbed string, clock func() sim.Time, connID func() uint64) func(core.ErrorCode, string) {
	return func(code core.ErrorCode, op string) {
		e := core.SystemEntry{
			At:      clock(),
			Testbed: testbed,
			Node:    l.node,
			Source:  code.Source(),
			Code:    code,
			Detail:  code.Message() + " (" + op + ")",
		}
		if connID != nil {
			e.ConnID = connID()
		}
		l.Append(e)
	}
}

// WriteUserReports serialises reports as JSON lines.
func WriteUserReports(w io.Writer, reports []core.UserReport) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range reports {
		if err := enc.Encode(&reports[i]); err != nil {
			return fmt.Errorf("logging: encode report %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadUserReports parses JSON-line reports.
func ReadUserReports(r io.Reader) ([]core.UserReport, error) {
	var out []core.UserReport
	dec := json.NewDecoder(r)
	for {
		var rec core.UserReport
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("logging: decode report %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// WriteSystemEntries serialises entries as JSON lines.
func WriteSystemEntries(w io.Writer, entries []core.SystemEntry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range entries {
		if err := enc.Encode(&entries[i]); err != nil {
			return fmt.Errorf("logging: encode entry %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadSystemEntries parses JSON-line entries.
func ReadSystemEntries(r io.Reader) ([]core.SystemEntry, error) {
	var out []core.SystemEntry
	dec := json.NewDecoder(r)
	for {
		var rec core.SystemEntry
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("logging: decode entry %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// SortUserReports orders reports by (time, node) in place — the time-based
// merge criterion of the coalescence scheme.
func SortUserReports(reports []core.UserReport) {
	sort.SliceStable(reports, func(i, j int) bool {
		if reports[i].At != reports[j].At {
			return reports[i].At < reports[j].At
		}
		return reports[i].Node < reports[j].Node
	})
}

// SortSystemEntries orders entries by (time, node) in place.
func SortSystemEntries(entries []core.SystemEntry) {
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].At != entries[j].At {
			return entries[i].At < entries[j].At
		}
		return entries[i].Node < entries[j].Node
	})
}
