package logging

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func sampleReports() []core.UserReport {
	return []core.UserReport{
		{At: 3 * sim.Second, Testbed: "random", Node: "Verde", Failure: core.UFPacketLoss,
			Workload: core.WLRandom, Packet: core.PTDM1, ConnID: 1},
		{At: sim.Second, Testbed: "random", Node: "Win", Failure: core.UFBindFailed,
			Workload: core.WLRandom, ConnID: 2},
		{At: sim.Second, Testbed: "random", Node: "Azzurro", Failure: core.UFConnectFailed,
			Workload: core.WLRandom, ConnID: 3},
	}
}

func sampleEntries() []core.SystemEntry {
	return []core.SystemEntry{
		{At: 2 * sim.Second, Testbed: "random", Node: "Verde",
			Source: core.SrcHCI, Code: core.CodeHCICommandTimeout},
		{At: sim.Second, Testbed: "random", Node: "Giallo",
			Source: core.SrcSDP, Code: core.CodeSDPTimeout},
	}
}

func TestTestLogAppendSnapshotDrain(t *testing.T) {
	l := NewTestLog("Verde")
	if l.Node() != "Verde" {
		t.Error("wrong node")
	}
	for _, r := range sampleReports() {
		l.Append(r)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	snap := l.Snapshot()
	if len(snap) != 3 || l.Len() != 3 {
		t.Error("snapshot should not drain")
	}
	// Mutating the snapshot must not touch the log.
	snap[0].Node = "corrupted"
	if l.Snapshot()[0].Node == "corrupted" {
		t.Error("snapshot aliases log storage")
	}
	got := l.Drain()
	if len(got) != 3 || l.Len() != 0 {
		t.Error("drain should empty the log")
	}
}

func TestSystemLogAppendSnapshotDrain(t *testing.T) {
	l := NewSystemLog("Giallo")
	for _, e := range sampleEntries() {
		l.Append(e)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if len(l.Snapshot()) != 2 {
		t.Error("snapshot size")
	}
	if got := l.Drain(); len(got) != 2 || l.Len() != 0 {
		t.Error("drain should empty the log")
	}
}

func TestSinkStampsEntries(t *testing.T) {
	l := NewSystemLog("Ipaq")
	now := 42 * sim.Second
	conn := uint64(7)
	sink := l.Sink("realistic", func() sim.Time { return now }, func() uint64 { return conn })
	sink(core.CodeBCSPOutOfOrder, "bcsp.deliver")
	entries := l.Snapshot()
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	e := entries[0]
	if e.At != now || e.Node != "Ipaq" || e.Testbed != "realistic" ||
		e.Source != core.SrcBCSP || e.Code != core.CodeBCSPOutOfOrder || e.ConnID != 7 {
		t.Errorf("entry = %+v", e)
	}
	if !strings.Contains(e.Detail, "bcsp.deliver") {
		t.Errorf("detail %q should carry the op", e.Detail)
	}
}

func TestUserReportsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleReports()
	if err := WriteUserReports(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadUserReports(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d reports", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("report %d mismatch", i)
		}
	}
}

func TestSystemEntriesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleEntries()
	if err := WriteSystemEntries(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSystemEntries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d entries", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("entry %d mismatch", i)
		}
	}
}

func TestReadUserReportsRejectsGarbage(t *testing.T) {
	if _, err := ReadUserReports(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadEmpty(t *testing.T) {
	if out, err := ReadUserReports(strings.NewReader("")); err != nil || len(out) != 0 {
		t.Errorf("empty read: %v, %v", out, err)
	}
	if out, err := ReadSystemEntries(strings.NewReader("")); err != nil || len(out) != 0 {
		t.Errorf("empty read: %v, %v", out, err)
	}
}

func TestSortUserReports(t *testing.T) {
	rs := sampleReports()
	SortUserReports(rs)
	if rs[0].Node != "Azzurro" || rs[1].Node != "Win" || rs[2].Node != "Verde" {
		t.Errorf("order = %s, %s, %s", rs[0].Node, rs[1].Node, rs[2].Node)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].At < rs[i-1].At {
			t.Fatal("not time ordered")
		}
	}
}

func TestSortSystemEntries(t *testing.T) {
	es := sampleEntries()
	SortSystemEntries(es)
	if es[0].Node != "Giallo" {
		t.Errorf("order wrong: %s first", es[0].Node)
	}
}
