// Package radio models the 2.4 GHz ISM-band RF link between two Bluetooth
// units. The paper attributes data-transfer failures to correlated bit
// errors ("bursts") from multi-path fading and electromagnetic interference
// that defeat the baseband's CRC and FEC protections; this package supplies
// exactly that error process.
//
// Each link runs a Gilbert–Elliott two-state Markov chain over baseband
// slots: a good state with a low bit-error rate and a bad (fading) state
// with a high one. On top of the chain, Poisson-arriving interference bursts
// (microwave ovens, 802.11 neighbours) force the channel bad for their
// duration. Distance from the NAP scales the baseline error rate through a
// mild path-loss term — mild, because the paper measured no significant
// failure dependence on distance within its 0.5–7 m testbed geometry.
package radio

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/sim"
)

// Config parameterises a link's error process.
type Config struct {
	// DistanceM is the antenna distance from the NAP in metres.
	DistanceM float64

	// MeanGoodDur and MeanBadDur are the mean sojourn times of the
	// Gilbert–Elliott chain (exponentially distributed, discretised to
	// slots).
	MeanGoodDur sim.Time
	MeanBadDur  sim.Time

	// BERGood and BERBad are the per-bit error probabilities in each state.
	BERGood float64
	BERBad  float64

	// InterferencePerHour is the Poisson arrival rate of interference
	// bursts; MeanInterferenceDur is their mean (exponential) duration;
	// BERInterference applies while a burst is active.
	InterferencePerHour float64
	MeanInterferenceDur sim.Time
	BERInterference     float64

	// DistanceBERSlope is the fractional increase in baseline BER per metre
	// of distance; kept small so distance stays a second-order effect, as
	// measured in the paper (33.3/37.1/29.6 % failure shares at 0.5/5/7 m).
	DistanceBERSlope float64
}

// DefaultConfig returns the calibrated channel parameters for a PANU at the
// given distance from the NAP.
func DefaultConfig(distanceM float64) Config {
	return Config{
		DistanceM:           distanceM,
		MeanGoodDur:         1800 * sim.Second,
		MeanBadDur:          60 * sim.Millisecond,
		BERGood:             2e-6,
		BERBad:              2e-2,
		InterferencePerHour: 2,
		MeanInterferenceDur: 250 * sim.Millisecond,
		BERInterference:     5e-2,
		DistanceBERSlope:    0.02,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.MeanGoodDur <= 0 || c.MeanBadDur <= 0:
		return fmt.Errorf("radio: non-positive sojourn times %v/%v", c.MeanGoodDur, c.MeanBadDur)
	case c.BERGood < 0 || c.BERGood > 1 || c.BERBad < 0 || c.BERBad > 1:
		return fmt.Errorf("radio: BER out of range good=%v bad=%v", c.BERGood, c.BERBad)
	case c.InterferencePerHour < 0:
		return fmt.Errorf("radio: negative interference rate %v", c.InterferencePerHour)
	case c.DistanceM < 0:
		return fmt.Errorf("radio: negative distance %v", c.DistanceM)
	default:
		return nil
	}
}

// Link is the error process for one NAP↔PANU RF link. Queries must arrive
// with non-decreasing slot numbers (transmissions are sequential in a
// piconet), which lets the chain advance lazily and deterministically.
type Link struct {
	cfg Config
	rng *rand.Rand

	bad       bool
	stateEnds int64 // slot at which the current sojourn ends

	nextInterference int64 // slot of the next interference arrival
	interferenceEnds int64 // slot at which the active burst ends (0 = none)

	lastQueried int64

	// Counters for diagnostics and tests.
	badSlots, goodSlots, bursts int64
}

// NewLink builds a link; the rng should be a dedicated stream, e.g.
// world.RNG("radio."+nodeName). Invalid configs panic: links are constructed
// at testbed build time, where a bad parameter is a programming error.
func NewLink(cfg Config, rng *rand.Rand) *Link {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	l := &Link{cfg: cfg, rng: rng}
	l.stateEnds = l.sampleSojourn(false)
	l.nextInterference = l.sampleInterferenceGap()
	return l
}

// Config returns the link's configuration.
func (l *Link) Config() Config { return l.cfg }

func (l *Link) sampleSojourn(bad bool) int64 {
	mean := l.cfg.MeanGoodDur
	if bad {
		mean = l.cfg.MeanBadDur
	}
	slots := int64(float64(mean.Slots()) * l.rng.ExpFloat64())
	if slots < 1 {
		slots = 1
	}
	return slots
}

func (l *Link) sampleInterferenceGap() int64 {
	if l.cfg.InterferencePerHour <= 0 {
		return 1 << 62
	}
	meanGap := float64(sim.Hour.Slots()) / l.cfg.InterferencePerHour
	gap := int64(meanGap * l.rng.ExpFloat64())
	if gap < 1 {
		gap = 1
	}
	return gap
}

// advance rolls the chain and interference process forward to slot.
func (l *Link) advance(slot int64) {
	if slot < l.lastQueried {
		panic(fmt.Sprintf("radio: non-monotonic slot query %d after %d", slot, l.lastQueried))
	}
	l.lastQueried = slot
	for l.stateEnds <= slot {
		start := l.stateEnds
		l.bad = !l.bad
		l.stateEnds = start + l.sampleSojourn(l.bad)
	}
	for l.nextInterference <= slot {
		start := l.nextInterference
		durSlots := int64(float64(l.cfg.MeanInterferenceDur.Slots()) * l.rng.ExpFloat64())
		if durSlots < 1 {
			durSlots = 1
		}
		end := start + durSlots
		if end > l.interferenceEnds {
			l.interferenceEnds = end
		}
		l.bursts++
		l.nextInterference = start + l.sampleInterferenceGap()
	}
}

// SlotBER reports the per-bit error probability in effect during the given
// baseband slot.
func (l *Link) SlotBER(slot int64) float64 {
	l.advance(slot)
	ber := l.cfg.BERGood
	if l.bad {
		ber = l.cfg.BERBad
		l.badSlots++
	} else {
		l.goodSlots++
	}
	if slot < l.interferenceEnds && l.cfg.BERInterference > ber {
		ber = l.cfg.BERInterference
	}
	// Path-loss term: small multiplicative penalty with distance.
	ber *= 1 + l.cfg.DistanceBERSlope*l.cfg.DistanceM
	if ber > 1 {
		ber = 1
	}
	return ber
}

// BERRun reports the per-bit error probability in effect at slot from,
// together with the first slot (capped at to) at which the error process
// might change state: every slot in [from, until) sees exactly the BER that
// a SlotBER query would report for it. BERRun is the run-length fast path
// of the data plane: with mean good sojourns of ~2.9M slots it replaces
// millions of per-slot SlotBER queries with one query per channel state per
// attempt, drawing exactly the same RNG sequence as per-slot queries would
// (sojourns are sampled lazily at boundary crossings, which happen
// identically however the query points are spaced). Unlike SlotBER it does
// not advance the good/bad slot diagnostics counters, which remain per-slot
// query counts.
func (l *Link) BERRun(from, to int64) (ber float64, until int64) {
	l.advance(from)
	until = to
	if l.stateEnds < until {
		until = l.stateEnds
	}
	if l.nextInterference < until {
		until = l.nextInterference
	}
	if from < l.interferenceEnds && l.interferenceEnds < until {
		until = l.interferenceEnds
	}
	ber = l.cfg.BERGood
	if l.bad {
		ber = l.cfg.BERBad
	}
	if from < l.interferenceEnds && l.cfg.BERInterference > ber {
		ber = l.cfg.BERInterference
	}
	ber *= 1 + l.cfg.DistanceBERSlope*l.cfg.DistanceM
	if ber > 1 {
		ber = 1
	}
	return ber, until
}

// Bad reports whether the chain was in the bad state at the last query.
func (l *Link) Bad() bool { return l.bad }

// Stats reports slot-state counters for diagnostics.
func (l *Link) Stats() (good, bad, bursts int64) {
	return l.goodSlots, l.badSlots, l.bursts
}

// CodewordErrors draws the number of bit errors hitting a codeword of n bits
// transmitted in a slot with the given BER. Within a slot, errors cluster:
// conditional on the first error, further errors in the same codeword are
// drawn at an elevated rate. This reproduces the "correlated errors from bit
// to bit" that the paper (citing Paulitsch et al.) blames for CRC escapes.
func CodewordErrors(rng *rand.Rand, n int, ber float64) int {
	if ber <= 0 || n <= 0 {
		return 0
	}
	// First error: probability 1-(1-ber)^n, sampled directly.
	pAny := 1 - pow1m(ber, n)
	if rng.Float64() >= pAny {
		return 0
	}
	// Burst continuation: each subsequent bit errors with probability
	// clustered around 0.3, the classic intra-burst density.
	errors := 1
	for i := 1; i < n; i++ {
		if rng.Float64() < 0.3 {
			errors++
		} else {
			break
		}
	}
	return errors
}

// pow1m computes (1-p)^n without math.Pow in the hot path.
func pow1m(p float64, n int) float64 {
	out := 1.0
	base := 1 - p
	for n > 0 {
		if n&1 == 1 {
			out *= base
		}
		base *= base
		n >>= 1
	}
	return out
}
