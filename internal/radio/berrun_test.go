package radio

import (
	"math/rand/v2"
	"testing"

	"repro/internal/sim"
)

// TestBERRunMatchesSlotBER drives two identically seeded links across the
// same slot range — one with per-slot SlotBER queries, one with run-length
// BERRun queries — and checks that every slot sees the identical BER. The
// run-length API is the data plane's fast path; this pins its contract that
// [from, until) is exactly the per-slot answer, including the same lazy
// sojourn sampling (same RNG draws at the same boundary crossings).
func TestBERRunMatchesSlotBER(t *testing.T) {
	const slotCount = 500_000
	cfg := DefaultConfig(5)
	// Compress the chain so the range crosses many state transitions and
	// interference bursts.
	cfg.MeanGoodDur = 200 * sim.Millisecond
	cfg.MeanBadDur = 40 * sim.Millisecond
	cfg.InterferencePerHour = 3600

	perSlot := NewLink(cfg, rand.New(rand.NewPCG(42, 42)))
	byRun := NewLink(cfg, rand.New(rand.NewPCG(42, 42)))

	want := make([]float64, slotCount)
	for s := int64(0); s < slotCount; s++ {
		want[s] = perSlot.SlotBER(s)
	}
	for s := int64(0); s < slotCount; {
		ber, until := byRun.BERRun(s, slotCount)
		if until <= s {
			t.Fatalf("BERRun(%d) returned empty run ending at %d", s, until)
		}
		for ; s < until; s++ {
			if ber != want[s] {
				t.Fatalf("slot %d: BERRun %v != SlotBER %v", s, ber, want[s])
			}
		}
	}
}

// TestBERRunHonorsWindowCap checks that until never exceeds the caller's
// window even deep inside a long sojourn.
func TestBERRunHonorsWindowCap(t *testing.T) {
	l := NewLink(DefaultConfig(0), rand.New(rand.NewPCG(7, 7)))
	_, until := l.BERRun(0, 10)
	if until > 10 {
		t.Errorf("until = %d beyond window cap 10", until)
	}
}
