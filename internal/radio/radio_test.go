package radio

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/sim"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(3, 4)) }

func TestDefaultConfigValid(t *testing.T) {
	for _, d := range []float64{0.5, 5, 7} {
		if err := DefaultConfig(d).Validate(); err != nil {
			t.Errorf("DefaultConfig(%v) invalid: %v", d, err)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero good sojourn", func(c *Config) { c.MeanGoodDur = 0 }},
		{"zero bad sojourn", func(c *Config) { c.MeanBadDur = 0 }},
		{"negative BER", func(c *Config) { c.BERGood = -1 }},
		{"BER above one", func(c *Config) { c.BERBad = 1.5 }},
		{"negative interference", func(c *Config) { c.InterferencePerHour = -1 }},
		{"negative distance", func(c *Config) { c.DistanceM = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(1)
			tt.mutate(&cfg)
			if cfg.Validate() == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestNewLinkPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	cfg := DefaultConfig(1)
	cfg.BERGood = 2
	NewLink(cfg, testRNG())
}

func TestSlotBERBetweenStates(t *testing.T) {
	cfg := DefaultConfig(0) // zero distance: no path-loss scaling
	cfg.InterferencePerHour = 0
	// Frequent fades so both states appear in a bounded scan.
	cfg.MeanGoodDur = 12 * sim.Second
	l := NewLink(cfg, testRNG())
	seenGood, seenBad := false, false
	for s := int64(0); s < 2_000_000 && !(seenGood && seenBad); s += 1 {
		ber := l.SlotBER(s)
		switch {
		case math.Abs(ber-cfg.BERGood) < 1e-12:
			seenGood = true
		case math.Abs(ber-cfg.BERBad) < 1e-12:
			seenBad = true
		default:
			t.Fatalf("slot BER %v is neither good nor bad rate", ber)
		}
	}
	if !seenGood || !seenBad {
		t.Errorf("chain never visited both states (good=%v bad=%v)", seenGood, seenBad)
	}
}

func TestBadStateFractionMatchesSojourns(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.InterferencePerHour = 0
	cfg.MeanGoodDur = 12 * sim.Second // enough sojourns for the estimate
	l := NewLink(cfg, testRNG())
	for s := int64(0); s < 5_000_000; s++ {
		l.SlotBER(s)
	}
	good, bad, _ := l.Stats()
	gotFrac := float64(bad) / float64(good+bad)
	wantFrac := float64(cfg.MeanBadDur) / float64(cfg.MeanBadDur+cfg.MeanGoodDur)
	if math.Abs(gotFrac-wantFrac)/wantFrac > 0.25 {
		t.Errorf("bad-state fraction = %v, want ~%v", gotFrac, wantFrac)
	}
}

func TestInterferenceRaisesBER(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.BERBad = cfg.BERGood // disable the chain's contribution
	cfg.InterferencePerHour = 3600
	cfg.MeanInterferenceDur = 100 * sim.Millisecond
	l := NewLink(cfg, testRNG())
	elevated := 0
	total := int64(10 * sim.Minute / sim.Slot)
	for s := int64(0); s < total; s++ {
		if l.SlotBER(s) > cfg.BERGood*2 {
			elevated++
		}
	}
	if elevated == 0 {
		t.Error("interference never raised BER")
	}
	_, _, bursts := l.Stats()
	// ~1 burst/second for 600 s; allow wide tolerance.
	if bursts < 300 || bursts > 1200 {
		t.Errorf("bursts = %d, want ~600", bursts)
	}
}

func TestDistanceScalesBER(t *testing.T) {
	near := DefaultConfig(0.5)
	far := DefaultConfig(7)
	near.InterferencePerHour, far.InterferencePerHour = 0, 0
	ln := NewLink(near, testRNG())
	lf := NewLink(far, testRNG())
	bn, bf := ln.SlotBER(0), lf.SlotBER(0)
	if bf <= bn {
		t.Errorf("far BER %v should exceed near BER %v", bf, bn)
	}
	// But only mildly: within a factor of 1.2 (distance is second-order).
	if bf/bn > 1.2 {
		t.Errorf("distance effect too strong: %v/%v", bf, bn)
	}
}

func TestMonotonicQueryEnforced(t *testing.T) {
	l := NewLink(DefaultConfig(1), testRNG())
	l.SlotBER(100)
	defer func() {
		if recover() == nil {
			t.Error("want panic for backwards slot query")
		}
	}()
	l.SlotBER(99)
}

func TestDeterminism(t *testing.T) {
	mk := func() []float64 {
		l := NewLink(DefaultConfig(5), rand.New(rand.NewPCG(9, 9)))
		out := make([]float64, 0, 1000)
		for s := int64(0); s < 1000; s++ {
			out = append(out, l.SlotBER(s*3))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCodewordErrors(t *testing.T) {
	r := testRNG()
	if CodewordErrors(r, 15, 0) != 0 {
		t.Error("zero BER should give zero errors")
	}
	if CodewordErrors(r, 0, 0.5) != 0 {
		t.Error("zero-length codeword should give zero errors")
	}
	// High BER: errors should frequently exceed 1 (bursts), which is what
	// defeats single-error-correcting Hamming codes.
	multi, any := 0, 0
	for i := 0; i < 20000; i++ {
		e := CodewordErrors(r, 15, 0.05)
		if e > 0 {
			any++
		}
		if e > 1 {
			multi++
		}
		if e > 15 {
			t.Fatalf("more errors (%d) than bits", e)
		}
	}
	if any == 0 {
		t.Fatal("no errors at 5% BER")
	}
	if frac := float64(multi) / float64(any); frac < 0.15 {
		t.Errorf("multi-bit fraction %v too low for a burst channel", frac)
	}
}

func TestPow1m(t *testing.T) {
	for _, tt := range []struct {
		p float64
		n int
	}{{0.01, 15}, {0.5, 3}, {0, 10}, {1, 4}} {
		want := math.Pow(1-tt.p, float64(tt.n))
		if got := pow1m(tt.p, tt.n); math.Abs(got-want) > 1e-12 {
			t.Errorf("pow1m(%v,%d) = %v, want %v", tt.p, tt.n, got, want)
		}
	}
}
