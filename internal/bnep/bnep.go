// Package bnep implements the Bluetooth Network Encapsulation Protocol: the
// Ethernet emulation over L2CAP that the PAN profile uses to carry IP, and
// the bnep0 virtual network interface whose creation/configuration race is
// behind the paper's "Bind failed" user failures.
//
// Table 1 failure modes carried here: "Failed to add a connection", "can't
// locate module bnep0", "bnep occupied".
package bnep

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/hci"
	"repro/internal/l2cap"
	"repro/internal/sim"
)

// MTU is the BNEP maximum transfer unit (the paper fixes L_S = L_R to this
// value, 1691 bytes, in the Figure 3b experiment).
const MTU = 1691

// Packet types of the BNEP header.
const (
	TypeGeneralEthernet    uint8 = 0x00
	TypeControl            uint8 = 0x01
	TypeCompressedEthernet uint8 = 0x02
	TypeCompressedSrcOnly  uint8 = 0x03
	TypeCompressedDstOnly  uint8 = 0x04
)

// EthernetHeaderLen is the uncompressed BNEP general-Ethernet header length:
// type byte + dst MAC + src MAC + EtherType.
const EthernetHeaderLen = 1 + 6 + 6 + 2

// Frame is one BNEP-encapsulated Ethernet frame.
type Frame struct {
	Type      uint8
	Dst, Src  [6]byte
	EtherType uint16
	Payload   []byte
}

// Marshal serialises a frame. Compressed types omit the elided addresses,
// exactly as on the wire.
func (f Frame) Marshal() ([]byte, error) {
	if len(f.Payload) > MTU {
		return nil, fmt.Errorf("bnep: payload %dB exceeds MTU %d", len(f.Payload), MTU)
	}
	out := make([]byte, 0, EthernetHeaderLen+len(f.Payload))
	out = append(out, f.Type)
	switch f.Type {
	case TypeGeneralEthernet:
		out = append(out, f.Dst[:]...)
		out = append(out, f.Src[:]...)
	case TypeCompressedEthernet:
		// Both addresses elided (known from the connection).
	case TypeCompressedSrcOnly:
		out = append(out, f.Src[:]...)
	case TypeCompressedDstOnly:
		out = append(out, f.Dst[:]...)
	case TypeControl:
		// Control frames carry no Ethernet addressing.
	default:
		return nil, fmt.Errorf("bnep: unknown packet type %#x", f.Type)
	}
	if f.Type != TypeControl {
		var et [2]byte
		binary.BigEndian.PutUint16(et[:], f.EtherType)
		out = append(out, et[:]...)
	}
	out = append(out, f.Payload...)
	return out, nil
}

// Unmarshal parses a frame produced by Marshal.
func Unmarshal(wire []byte) (Frame, error) {
	if len(wire) < 1 {
		return Frame{}, fmt.Errorf("bnep: empty frame")
	}
	f := Frame{Type: wire[0]}
	rest := wire[1:]
	take := func(n int) ([]byte, error) {
		if len(rest) < n {
			return nil, fmt.Errorf("bnep: truncated frame")
		}
		out := rest[:n]
		rest = rest[n:]
		return out, nil
	}
	var err error
	var b []byte
	switch f.Type {
	case TypeGeneralEthernet:
		if b, err = take(6); err != nil {
			return Frame{}, err
		}
		copy(f.Dst[:], b)
		if b, err = take(6); err != nil {
			return Frame{}, err
		}
		copy(f.Src[:], b)
	case TypeCompressedEthernet, TypeControl:
	case TypeCompressedSrcOnly:
		if b, err = take(6); err != nil {
			return Frame{}, err
		}
		copy(f.Src[:], b)
	case TypeCompressedDstOnly:
		if b, err = take(6); err != nil {
			return Frame{}, err
		}
		copy(f.Dst[:], b)
	default:
		return Frame{}, fmt.Errorf("bnep: unknown packet type %#x", f.Type)
	}
	if f.Type != TypeControl {
		if b, err = take(2); err != nil {
			return Frame{}, err
		}
		f.EtherType = binary.BigEndian.Uint16(b)
	}
	f.Payload = append([]byte(nil), rest...)
	return f, nil
}

// Config parameterises the BNEP service's fault behaviour.
type Config struct {
	// ModuleMissingProb: the kernel module backing bnep0 cannot be located.
	ModuleMissingProb float64
	// OccupiedProb: the bnep device is still held by a previous connection.
	OccupiedProb float64
	// AddFailedProb: adding the connection to the bridge fails.
	AddFailedProb float64
	// SetupTime is the kernel-side interface build time — the first half of
	// the paper's T_H interval.
	SetupTime sim.Time
}

// DefaultConfig returns calibrated BNEP parameters.
func DefaultConfig() Config {
	return Config{
		ModuleMissingProb: 8e-6,
		OccupiedProb:      1e-5,
		AddFailedProb:     5e-6,
		SetupTime:         120 * sim.Millisecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ModuleMissingProb < 0 || c.ModuleMissingProb > 1 ||
		c.OccupiedProb < 0 || c.OccupiedProb > 1 ||
		c.AddFailedProb < 0 || c.AddFailedProb > 1 {
		return fmt.Errorf("bnep: probability out of range")
	}
	if c.SetupTime < 0 {
		return fmt.Errorf("bnep: negative setup time")
	}
	return nil
}

// Interface is the bnep0 virtual network interface. It exists once the BNEP
// channel is up, but is only usable for socket binds after the OS hotplug
// mechanism has configured it (Configured == true) — the T_C/T_H race.
type Interface struct {
	Name       string
	CreatedAt  sim.Time
	Configured bool
	Channel    *l2cap.Channel
}

// Result reports a BNEP operation.
type Result struct {
	Dur sim.Time
	Err error
}

// Service is the BNEP layer of one node.
type Service struct {
	cfg   Config
	node  string
	rng   *rand.Rand
	sink  hci.Sink
	clock func() sim.Time

	iface *Interface // at most one bnep interface per PANU in the testbeds

	moduleMissing, occupied, addFailed int
}

// NewService builds the BNEP layer.
func NewService(cfg Config, node string, clock func() sim.Time, rng *rand.Rand, sink hci.Sink) *Service {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if clock == nil {
		panic("bnep: nil clock")
	}
	return &Service{cfg: cfg, node: node, clock: clock, rng: rng, sink: sink}
}

// Stats reports fault counters.
func (s *Service) Stats() (moduleMissing, occupied, addFailed int) {
	return s.moduleMissing, s.occupied, s.addFailed
}

// Interface returns the current bnep0 interface, or nil.
func (s *Service) Interface() *Interface { return s.iface }

// fail logs and wraps a BNEP error.
func (s *Service) fail(code core.ErrorCode, op string) Result {
	switch code {
	case core.CodeBNEPModuleMissing:
		s.moduleMissing++
	case core.CodeBNEPOccupied:
		s.occupied++
	case core.CodeBNEPAddFailed:
		s.addFailed++
	}
	if s.sink != nil {
		s.sink(code, op)
	}
	return Result{Err: core.NewSimError(code, op, s.node)}
}

// CreateChannel builds the bnep0 interface over an open L2CAP channel. On
// success the interface exists but is NOT configured: the OS hotplug layer
// flips Configured after its own delay (stack.Hotplug drives that).
func (s *Service) CreateChannel(ch *l2cap.Channel) (*Interface, Result) {
	if ch == nil || ch.State != l2cap.StateOpen {
		return nil, s.fail(core.CodeBNEPAddFailed, "bnep.create")
	}
	switch u := s.rng.Float64(); {
	case u < s.cfg.ModuleMissingProb:
		return nil, s.fail(core.CodeBNEPModuleMissing, "bnep.create")
	case u < s.cfg.ModuleMissingProb+s.cfg.OccupiedProb:
		return nil, s.fail(core.CodeBNEPOccupied, "bnep.create")
	case u < s.cfg.ModuleMissingProb+s.cfg.OccupiedProb+s.cfg.AddFailedProb:
		return nil, s.fail(core.CodeBNEPAddFailed, "bnep.create")
	}
	s.iface = &Interface{
		Name:      "bnep0",
		CreatedAt: s.clock(),
		Channel:   ch,
	}
	return s.iface, Result{Dur: s.cfg.SetupTime}
}

// DestroyChannel tears the interface down (disconnect or connection reset).
func (s *Service) DestroyChannel() {
	s.iface = nil
}

// Occupied reports whether a bnep interface currently exists; attempting a
// new PAN connection while it does is the "bnep occupied" condition.
func (s *Service) Occupied() bool { return s.iface != nil }
