package bnep

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/l2cap"
	"repro/internal/sim"
)

func openChannel() *l2cap.Channel {
	return &l2cap.Channel{LocalCID: 0x40, RemoteCID: 0x1040,
		PSM: l2cap.PSMBNEP, State: l2cap.StateOpen}
}

func newService(mutate func(*Config)) *Service {
	cfg := DefaultConfig()
	cfg.ModuleMissingProb, cfg.OccupiedProb, cfg.AddFailedProb = 0, 0, 0
	if mutate != nil {
		mutate(&cfg)
	}
	var now sim.Time
	return NewService(cfg, "Azzurro", func() sim.Time { return now },
		rand.New(rand.NewPCG(21, 22)), nil)
}

func TestFrameRoundTripAllTypes(t *testing.T) {
	dst := [6]byte{0, 0x1A, 0x7D, 1, 2, 3}
	src := [6]byte{0, 0x1A, 0x7D, 9, 8, 7}
	for _, typ := range []uint8{TypeGeneralEthernet, TypeControl,
		TypeCompressedEthernet, TypeCompressedSrcOnly, TypeCompressedDstOnly} {
		f := Frame{Type: typ, Dst: dst, Src: src, EtherType: 0x0800,
			Payload: []byte("ip packet payload")}
		wire, err := f.Marshal()
		if err != nil {
			t.Fatalf("type %#x marshal: %v", typ, err)
		}
		got, err := Unmarshal(wire)
		if err != nil {
			t.Fatalf("type %#x unmarshal: %v", typ, err)
		}
		if got.Type != typ || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("type %#x corrupted: %+v", typ, got)
		}
		switch typ {
		case TypeGeneralEthernet:
			if got.Dst != dst || got.Src != src {
				t.Errorf("general ethernet lost addresses")
			}
		case TypeCompressedSrcOnly:
			if got.Src != src {
				t.Errorf("src-only lost source")
			}
		case TypeCompressedDstOnly:
			if got.Dst != dst {
				t.Errorf("dst-only lost destination")
			}
		}
		if typ != TypeControl && got.EtherType != 0x0800 {
			t.Errorf("type %#x lost EtherType", typ)
		}
	}
}

func TestFrameHeaderOverheads(t *testing.T) {
	f := Frame{Type: TypeGeneralEthernet, EtherType: 0x0800, Payload: make([]byte, 100)}
	wire, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != EthernetHeaderLen+100 {
		t.Errorf("general header length = %d, want %d", len(wire)-100, EthernetHeaderLen)
	}
	f.Type = TypeCompressedEthernet
	wire, err = f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 3+100 {
		t.Errorf("compressed header length = %d, want 3", len(wire)-100)
	}
}

func TestFrameRejectsOversizedAndUnknown(t *testing.T) {
	if _, err := (Frame{Type: TypeCompressedEthernet, Payload: make([]byte, MTU+1)}).Marshal(); err == nil {
		t.Error("oversized payload accepted")
	}
	if _, err := (Frame{Type: 0x7F}).Marshal(); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Error("empty frame accepted")
	}
	if _, err := Unmarshal([]byte{TypeGeneralEthernet, 1, 2}); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, err := Unmarshal([]byte{0x7F, 0, 0}); err == nil {
		t.Error("unknown type frame accepted")
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	prop := func(payload []byte, dst, src [6]byte, et uint16) bool {
		if len(payload) > MTU {
			payload = payload[:MTU]
		}
		f := Frame{Type: TypeGeneralEthernet, Dst: dst, Src: src,
			EtherType: et, Payload: payload}
		wire, err := f.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(wire)
		if err != nil {
			return false
		}
		want := payload
		if want == nil {
			want = []byte{}
		}
		return got.Dst == dst && got.Src == src && got.EtherType == et &&
			bytes.Equal(got.Payload, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCreateChannelHappyPath(t *testing.T) {
	s := newService(nil)
	iface, res := s.CreateChannel(openChannel())
	if res.Err != nil {
		t.Fatalf("create: %v", res.Err)
	}
	if iface == nil || iface.Name != "bnep0" {
		t.Fatalf("iface = %+v", iface)
	}
	if iface.Configured {
		t.Error("interface should not be configured before hotplug runs")
	}
	if !s.Occupied() {
		t.Error("service should be occupied")
	}
	s.DestroyChannel()
	if s.Occupied() || s.Interface() != nil {
		t.Error("destroy did not release the interface")
	}
}

func TestCreateChannelRequiresOpenL2CAP(t *testing.T) {
	s := newService(nil)
	_, res := s.CreateChannel(nil)
	var se *core.SimError
	if !errors.As(res.Err, &se) || se.Code != core.CodeBNEPAddFailed {
		t.Fatalf("nil channel: %v", res.Err)
	}
	closed := openChannel()
	closed.State = l2cap.StateClosed
	if _, res := s.CreateChannel(closed); res.Err == nil {
		t.Error("closed channel accepted")
	}
}

func TestCreateChannelFaults(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		want   core.ErrorCode
	}{
		{"module missing", func(c *Config) { c.ModuleMissingProb = 1 }, core.CodeBNEPModuleMissing},
		{"occupied", func(c *Config) { c.OccupiedProb = 1 }, core.CodeBNEPOccupied},
		{"add failed", func(c *Config) { c.AddFailedProb = 1 }, core.CodeBNEPAddFailed},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := newService(tt.mutate)
			_, res := s.CreateChannel(openChannel())
			var se *core.SimError
			if !errors.As(res.Err, &se) || se.Code != tt.want {
				t.Fatalf("got %v, want %v", res.Err, tt.want)
			}
			mm, occ, af := s.Stats()
			if mm+occ+af != 1 {
				t.Errorf("stats = %d/%d/%d, want exactly one", mm, occ, af)
			}
		})
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.OccupiedProb = 1.1
	if bad.Validate() == nil {
		t.Error("probability > 1 should fail")
	}
	bad = DefaultConfig()
	bad.SetupTime = -1
	if bad.Validate() == nil {
		t.Error("negative setup time should fail")
	}
}
