package core

import (
	"fmt"

	"repro/internal/sim"
)

// WorkloadKind distinguishes the synthetic workloads of the study.
type WorkloadKind int

// Workload kinds. WLFixed is the special two-month experiment behind
// Figure 3b (N fixed to 10000 packets, L_S = L_R = 1691 bytes).
const (
	WLUnknown WorkloadKind = iota
	WLRandom
	WLRealistic
	WLFixed
)

// String names the workload kind.
func (w WorkloadKind) String() string {
	switch w {
	case WLRandom:
		return "random"
	case WLRealistic:
		return "realistic"
	case WLFixed:
		return "fixed"
	default:
		return fmt.Sprintf("WorkloadKind(%d)", int(w))
	}
}

// AppKind is the networked application emulated by the realistic workload
// during a cycle (Figure 3c's facets).
type AppKind int

// Emulated applications. AppNone marks random-workload cycles, which do not
// emulate a specific application.
const (
	AppNone AppKind = iota
	AppWeb
	AppMail
	AppFTP
	AppP2P
	AppStreaming

	numApps
)

// Apps lists the realistic applications in the paper's Figure 3c order.
func Apps() []AppKind { return []AppKind{AppWeb, AppMail, AppFTP, AppP2P, AppStreaming} }

// String names the application.
func (a AppKind) String() string {
	switch a {
	case AppNone:
		return "none"
	case AppWeb:
		return "Web"
	case AppMail:
		return "Mail"
	case AppFTP:
		return "FTP"
	case AppP2P:
		return "P2P"
	case AppStreaming:
		return "Streaming"
	default:
		return fmt.Sprintf("AppKind(%d)", int(a))
	}
}

// PacketType is a Bluetooth baseband ACL data packet type. DMx packets carry
// 2/3-rate shortened Hamming FEC; DHx packets are uncoded. The x is the
// number of consecutive 625 us slots occupied (1, 3, or 5).
type PacketType int

// Baseband ACL packet types, in Figure 3a's axis order.
const (
	PTUnknown PacketType = iota
	PTDM1
	PTDH1
	PTDM3
	PTDH3
	PTDM5
	PTDH5

	numPacketTypes
)

// NumPacketTypes bounds the PacketType values; dense per-type counters use
// it as their array length so the per-packet hot path avoids map operations.
const NumPacketTypes = int(numPacketTypes)

// PacketTypes lists the six ACL data packet types.
func PacketTypes() []PacketType {
	return []PacketType{PTDM1, PTDH1, PTDM3, PTDH3, PTDM5, PTDH5}
}

// Valid reports whether p names one of the six ACL data packet types.
func (p PacketType) Valid() bool { return p > PTUnknown && p < numPacketTypes }

// String names the packet type.
func (p PacketType) String() string {
	switch p {
	case PTDM1:
		return "DM1"
	case PTDH1:
		return "DH1"
	case PTDM3:
		return "DM3"
	case PTDH3:
		return "DH3"
	case PTDM5:
		return "DM5"
	case PTDH5:
		return "DH5"
	default:
		return fmt.Sprintf("PacketType(%d)", int(p))
	}
}

// Slots reports the number of baseband slots the packet occupies.
func (p PacketType) Slots() int {
	switch p {
	case PTDM1, PTDH1:
		return 1
	case PTDM3, PTDH3:
		return 3
	case PTDM5, PTDH5:
		return 5
	default:
		return 0
	}
}

// FEC reports whether the payload is protected by the shortened Hamming
// (15,10) forward error correction code (DMx types).
func (p PacketType) FEC() bool {
	switch p {
	case PTDM1, PTDM3, PTDM5:
		return true
	default:
		return false
	}
}

// Payload reports the maximum user payload in bytes, per the Bluetooth 1.1
// baseband specification.
func (p PacketType) Payload() int {
	switch p {
	case PTDM1:
		return 17
	case PTDH1:
		return 27
	case PTDM3:
		return 121
	case PTDH3:
		return 183
	case PTDM5:
		return 224
	case PTDH5:
		return 339
	default:
		return 0
	}
}

// RecoveryAction enumerates the Software-Implemented Recovery Actions
// (SIRAs) in cascade order. The ordinal doubles as the failure severity:
// a failure cleared by action j has severity j.
type RecoveryAction int

// SIRAs, ordered by increasing cost (recovery time).
const (
	RANone RecoveryAction = iota
	RAIPSocketReset
	RABTConnectionReset
	RABTStackReset
	RAAppRestart
	RAMultiAppRestart
	RASystemReboot
	RAMultiSystemReboot

	numRecoveryActions
)

// RecoveryActions lists the SIRAs in cascade order.
func RecoveryActions() []RecoveryAction {
	out := make([]RecoveryAction, 0, numRecoveryActions-1)
	for a := RAIPSocketReset; a < numRecoveryActions; a++ {
		out = append(out, a)
	}
	return out
}

// NumRecoveryActions is the number of defined SIRAs.
const NumRecoveryActions = int(numRecoveryActions) - 1

// String names the SIRA as in Table 3.
func (a RecoveryAction) String() string {
	switch a {
	case RANone:
		return "none"
	case RAIPSocketReset:
		return "IP socket reset"
	case RABTConnectionReset:
		return "BT connection reset"
	case RABTStackReset:
		return "BT stack reset"
	case RAAppRestart:
		return "Application restart"
	case RAMultiAppRestart:
		return "Multiple app restart"
	case RASystemReboot:
		return "System reboot"
	case RAMultiSystemReboot:
		return "Multiple sys reboot"
	default:
		return fmt.Sprintf("RecoveryAction(%d)", int(a))
	}
}

// Valid reports whether a names a defined SIRA.
func (a RecoveryAction) Valid() bool { return a >= RAIPSocketReset && a < numRecoveryActions }

// UserReport is one user-level failure report, as written to the Test Log
// by the instrumented BlueTest workload ("High Level Data" in the paper).
type UserReport struct {
	At sim.Time `json:"at"`

	Testbed string `json:"testbed"` // "random" or "realistic" testbed
	Node    string `json:"node"`    // host name, per the paper's Table 1

	Failure UserFailure `json:"failure"`

	// Node status at the moment of failure, per the paper's report fields.
	Workload   WorkloadKind   `json:"workload"`
	App        AppKind        `json:"app,omitempty"`
	Packet     PacketType     `json:"packet,omitempty"`
	SentPkts   int            `json:"sent_pkts"`        // packets sent on the connection before the failure
	RecvdPkts  int            `json:"recvd_pkts"`       // packets received before the failure
	CycleIdx   int            `json:"cycle_idx"`        // cycle number on the current connection (realistic WL)
	SDPFlag    bool           `json:"sdp_flag"`         // was the SDP search performed this cycle?
	ScanFlag   bool           `json:"scan_flag"`        // was inquiry/scan performed this cycle?
	DistanceM  float64        `json:"distance_m"`       // PANU antenna distance from the NAP
	IdleBefore sim.Time       `json:"idle_before"`      // idle time preceding the failing cycle
	ConnID     uint64         `json:"conn_id"`          // identifies the PAN connection instance
	Masked     bool           `json:"masked,omitempty"` // suppressed by an error-masking strategy (not a user-visible failure)
	Recovered  bool           `json:"recovered"`        // did some recovery action eventually succeed?
	Recovery   RecoveryAction `json:"recovery"`         // the SIRA that cleared it (RANone if none/NA)
	TTR        sim.Time       `json:"ttr"`              // time to recover

	// Taxonomy tags, assigned once when the report is created (workload
	// tagging) so every aggregation plane sees the same classification.
	// Both are zero on records from pre-taxonomy producers (codec v1).
	Phase   FailurePhase      `json:"phase,omitempty"`   // protocol phase the failure struck
	Verdict TransienceVerdict `json:"verdict,omitempty"` // windowed-recurrence transience verdict
}

// Severity reports the failure severity: the ordinal of the SIRA that
// cleared the failure (0 when unrecovered or unattempted).
func (r *UserReport) Severity() int { return int(r.Recovery) }

// SystemEntry is one system-level failure entry, as registered by system
// software in the OS system log ("Low Level Data" in the paper). System
// entries act as errors for user-level failures.
type SystemEntry struct {
	At sim.Time `json:"at"`

	Testbed string    `json:"testbed"`
	Node    string    `json:"node"` // node whose system log recorded the entry
	Source  SysSource `json:"source"`
	Code    ErrorCode `json:"code"`
	Detail  string    `json:"detail,omitempty"` // free-form daemon message

	// ConnID links the entry to a PAN connection instance when the
	// component knows it (0 otherwise).
	ConnID uint64 `json:"conn_id,omitempty"`
}

// Message renders the entry the way a syslog line would read.
func (e *SystemEntry) Message() string {
	d := e.Detail
	if d == "" {
		d = e.Code.Message()
	}
	return fmt.Sprintf("%s: %s", e.Source, d)
}
