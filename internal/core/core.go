// Package core defines the Bluetooth PAN failure model of Cinque, Cotroneo
// and Russo (DSN 2006): the user-level and system-level failure taxonomies of
// the paper's Table 1, the failure-report record types produced by the
// workload and by system software, and the recovery-action (SIRA) catalogue.
//
// Every other package in the reproduction speaks these types: the protocol
// stack and fault injectors emit SystemEntry records, the BlueTest workload
// emits UserReport records, the collector ships both to the repository, and
// the coalescence/analysis pipeline turns them into the paper's tables.
package core

import (
	"fmt"

	"repro/internal/sim"
)

// UserFailure enumerates the user-level failure types of Table 1 (left
// side): the failure as it manifests to a real user of a PANU device.
type UserFailure int

// User-level failure types, grouped by the utilisation phase in which they
// manifest (searching, connecting, transferring data).
const (
	UFUnknown UserFailure = iota

	// Search group.
	UFInquiryScanFailed // the inquiry procedure terminates abnormally
	UFNAPNotFound       // SDP does not find the NAP even though it is present
	UFSDPSearchFailed   // the SDP search procedure terminates abnormally

	// Connect group.
	UFConnectFailed           // L2CAP connection to the NAP fails
	UFPANConnectFailed        // PANU fails to establish the PAN connection
	UFBindFailed              // IP socket cannot bind the BNEP interface
	UFSwitchRoleRequestFailed // switch-role request never reaches the master
	UFSwitchRoleCommandFailed // request succeeds but command completes abnormally

	// Data-transfer group.
	UFPacketLoss   // an expected packet is lost (30 s timeout expires)
	UFDataMismatch // packet received, content corrupted (CRC escape)

	numUserFailures
)

// UserFailures lists all user-level failure types in taxonomy order.
func UserFailures() []UserFailure {
	out := make([]UserFailure, 0, numUserFailures-1)
	for f := UFInquiryScanFailed; f < numUserFailures; f++ {
		out = append(out, f)
	}
	return out
}

// NumUserFailures is the number of user-level failure types.
const NumUserFailures = int(numUserFailures) - 1

var userFailureNames = map[UserFailure]string{
	UFUnknown:                 "Unknown",
	UFInquiryScanFailed:       "Inquiry/scan failed",
	UFNAPNotFound:             "NAP not found",
	UFSDPSearchFailed:         "SDP search failed",
	UFConnectFailed:           "Connect failed",
	UFPANConnectFailed:        "PAN connect failed",
	UFBindFailed:              "Bind failed",
	UFSwitchRoleRequestFailed: "Sw role request failed",
	UFSwitchRoleCommandFailed: "Sw role command failed",
	UFPacketLoss:              "Packet loss",
	UFDataMismatch:            "Data mismatch",
}

// String returns the paper's name for the failure type.
func (f UserFailure) String() string {
	if s, ok := userFailureNames[f]; ok {
		return s
	}
	return fmt.Sprintf("UserFailure(%d)", int(f))
}

// Valid reports whether f is a defined failure type (not UFUnknown).
func (f UserFailure) Valid() bool { return f > UFUnknown && f < numUserFailures }

// Group classifies the failure by utilisation phase, per Table 1.
func (f UserFailure) Group() FailureGroup {
	switch f {
	case UFInquiryScanFailed, UFNAPNotFound, UFSDPSearchFailed:
		return GroupSearch
	case UFConnectFailed, UFPANConnectFailed, UFBindFailed,
		UFSwitchRoleRequestFailed, UFSwitchRoleCommandFailed:
		return GroupConnect
	case UFPacketLoss, UFDataMismatch:
		return GroupDataTransfer
	default:
		return GroupUnknown
	}
}

// ParseUserFailure maps a paper-style failure name back to its type.
func ParseUserFailure(s string) (UserFailure, error) {
	for f, name := range userFailureNames {
		if name == s && f != UFUnknown {
			return f, nil
		}
	}
	return UFUnknown, fmt.Errorf("core: unknown user failure %q", s)
}

// FailureGroup is the utilisation phase in which a user failure manifests.
type FailureGroup int

// Failure groups, per Table 1.
const (
	GroupUnknown      FailureGroup = iota
	GroupSearch                    // searching for devices and services
	GroupConnect                   // connecting
	GroupDataTransfer              // transferring data
)

// String names the group as in the paper.
func (g FailureGroup) String() string {
	switch g {
	case GroupSearch:
		return "Search"
	case GroupConnect:
		return "Connect"
	case GroupDataTransfer:
		return "Data Transfer"
	default:
		return fmt.Sprintf("FailureGroup(%d)", int(g))
	}
}

// FailurePhase is the protocol phase a user-level failure struck, the
// finer-grained classification production failure-data pipelines layer on
// top of Table 1's three utilisation groups: device discovery, service
// probing (SDP), link/connection opening, data sending, and established-
// session management. PhaseUnknown is the zero value carried by records
// produced before the taxonomy plane existed (binary codec v1 frames).
type FailurePhase int

// Protocol phases, in pipeline order.
const (
	PhaseUnknown FailurePhase = iota
	PhaseDiscovery
	PhaseProbe
	PhaseOpen
	PhaseSend
	PhaseSession

	numFailurePhases
)

// NumFailurePhases is the number of defined protocol phases.
const NumFailurePhases = int(numFailurePhases) - 1

// FailurePhases lists all defined phases in pipeline order.
func FailurePhases() []FailurePhase {
	out := make([]FailurePhase, 0, NumFailurePhases)
	for p := PhaseDiscovery; p < numFailurePhases; p++ {
		out = append(out, p)
	}
	return out
}

var failurePhaseNames = map[FailurePhase]string{
	PhaseUnknown:   "unknown",
	PhaseDiscovery: "discovery",
	PhaseProbe:     "probe",
	PhaseOpen:      "open",
	PhaseSend:      "send",
	PhaseSession:   "session",
}

// String names the phase.
func (p FailurePhase) String() string {
	if s, ok := failurePhaseNames[p]; ok {
		return s
	}
	return fmt.Sprintf("FailurePhase(%d)", int(p))
}

// Valid reports whether p is a defined phase (not PhaseUnknown).
func (p FailurePhase) Valid() bool { return p > PhaseUnknown && p < numFailurePhases }

// Phase classifies the failure by the protocol phase it struck. The mapping
// refines Table 1's groups: the Search group splits into discovery (inquiry)
// and probe (SDP), the Connect group into open (link/PAN/BNEP setup) and
// session (role switching on an established link), and the Data group is the
// send phase.
func (f UserFailure) Phase() FailurePhase {
	switch f {
	case UFInquiryScanFailed:
		return PhaseDiscovery
	case UFNAPNotFound, UFSDPSearchFailed:
		return PhaseProbe
	case UFConnectFailed, UFPANConnectFailed, UFBindFailed:
		return PhaseOpen
	case UFSwitchRoleRequestFailed, UFSwitchRoleCommandFailed:
		return PhaseSession
	case UFPacketLoss, UFDataMismatch:
		return PhaseSend
	default:
		return PhaseUnknown
	}
}

// TransienceVerdict records whether a failure looked like a one-off
// transient or part of a dynamic-availability episode — a recurrence of the
// same protocol phase on the same node within the recurrence window,
// indicating the node is oscillating in and out of service rather than
// suffering isolated glitches. The verdict is decided once, at collection
// time, by the windowed recurrence rule (see workload tagging), so every
// aggregation plane sees the same classification. VerdictUnknown is the
// zero value of untagged (pre-taxonomy) records.
type TransienceVerdict int

// Transience verdicts.
const (
	VerdictUnknown TransienceVerdict = iota
	VerdictTransient
	VerdictDynamicAvailability

	numTransienceVerdicts
)

// NumTransienceVerdicts is the number of defined verdicts.
const NumTransienceVerdicts = int(numTransienceVerdicts) - 1

// String names the verdict.
func (v TransienceVerdict) String() string {
	switch v {
	case VerdictTransient:
		return "transient"
	case VerdictDynamicAvailability:
		return "dynamic-availability"
	case VerdictUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("TransienceVerdict(%d)", int(v))
	}
}

// Valid reports whether v is a defined verdict (not VerdictUnknown).
func (v TransienceVerdict) Valid() bool { return v > VerdictUnknown && v < numTransienceVerdicts }

// SysSource enumerates the system-level failure locations of Table 1 (right
// side): the component that signalled the failure.
type SysSource int

// System-level failure sources. HCI..BCSP are BT-stack related; USB and
// Hotplug are OS/driver related.
const (
	SrcUnknown SysSource = iota
	SrcHCI               // HCI command timeouts / unknown handles
	SrcL2CAP             // unexpected start/continuation frames
	SrcSDP               // SDP daemon refused / timed out / service missing
	SrcBNEP              // bnep module/interface errors
	SrcBCSP              // out-of-order or missing BCSP packets
	SrcUSB               // USB device refuses new addresses
	SrcHotplug           // HAL daemon times out waiting for a hotplug event

	numSysSources
)

// SysSources lists all system-level sources in the paper's column order for
// Table 2: HCI, L2CAP, SDP, BCSP, BNEP, USB, HOTPLUG.
func SysSources() []SysSource {
	return []SysSource{SrcHCI, SrcL2CAP, SrcSDP, SrcBCSP, SrcBNEP, SrcUSB, SrcHotplug}
}

// NumSysSources is the number of system-level failure sources.
const NumSysSources = int(numSysSources) - 1

var sysSourceNames = map[SysSource]string{
	SrcUnknown: "UNKNOWN",
	SrcHCI:     "HCI",
	SrcL2CAP:   "L2CAP",
	SrcSDP:     "SDP",
	SrcBNEP:    "BNEP",
	SrcBCSP:    "BCSP",
	SrcUSB:     "USB",
	SrcHotplug: "HOTPLUG",
}

// String names the source as in the paper's tables.
func (s SysSource) String() string {
	if n, ok := sysSourceNames[s]; ok {
		return n
	}
	return fmt.Sprintf("SysSource(%d)", int(s))
}

// Valid reports whether s is a defined source.
func (s SysSource) Valid() bool { return s > SrcUnknown && s < numSysSources }

// BTStackRelated reports whether the source belongs to the BT software stack
// (as opposed to OS/drivers), per Table 1's location grouping.
func (s SysSource) BTStackRelated() bool {
	switch s {
	case SrcHCI, SrcL2CAP, SrcSDP, SrcBNEP, SrcBCSP:
		return true
	default:
		return false
	}
}

// ParseSysSource maps a source name back to its value.
func ParseSysSource(name string) (SysSource, error) {
	for s, n := range sysSourceNames {
		if n == name && s != SrcUnknown {
			return s, nil
		}
	}
	return SrcUnknown, fmt.Errorf("core: unknown system source %q", name)
}

// ErrorCode refines a SysSource into the specific observed error of Table 1.
type ErrorCode int

// Observed system-level error codes, per Table 1's "observed errors" column.
const (
	CodeUnknown ErrorCode = iota

	// HCI.
	CodeHCICommandTimeout // timeout transmitting the command to the firmware
	CodeHCIInvalidHandle  // command for unknown connection handle

	// L2CAP.
	CodeL2CAPUnexpectedFrame // unexpected start or continuation frames

	// SDP.
	CodeSDPConnectionRefused // connection with the SDP server refused
	CodeSDPTimeout           // SDP request timed out
	CodeSDPServiceMissing    // AP not implementing the required service (though it does)

	// BNEP.
	CodeBNEPModuleMissing // can't locate module bnep0
	CodeBNEPOccupied      // bnep occupied
	CodeBNEPAddFailed     // failed to add a connection

	// BCSP.
	CodeBCSPOutOfOrder // out-of-order BCSP packets
	CodeBCSPMissing    // missing BCSP packets

	// USB.
	CodeUSBAddressStall // device does not accept new addresses

	// Hotplug.
	CodeHotplugTimeout // HAL daemon timed out waiting for a hotplug event
)

var errorCodeInfo = map[ErrorCode]struct {
	src SysSource
	msg string
}{
	CodeHCICommandTimeout:    {SrcHCI, "timeout in the transmission of the command to the BT firmware"},
	CodeHCIInvalidHandle:     {SrcHCI, "command for unknown connection handle"},
	CodeL2CAPUnexpectedFrame: {SrcL2CAP, "unexpected start or continuation frames received"},
	CodeSDPConnectionRefused: {SrcSDP, "connection with the SDP server refused"},
	CodeSDPTimeout:           {SrcSDP, "connection with the SDP server timed out"},
	CodeSDPServiceMissing:    {SrcSDP, "AP not implementing the required service"},
	CodeBNEPModuleMissing:    {SrcBNEP, "can't locate module bnep0"},
	CodeBNEPOccupied:         {SrcBNEP, "bnep occupied"},
	CodeBNEPAddFailed:        {SrcBNEP, "failed to add a connection"},
	CodeBCSPOutOfOrder:       {SrcBCSP, "out of order BCSP packets"},
	CodeBCSPMissing:          {SrcBCSP, "missing BCSP packets"},
	CodeUSBAddressStall:      {SrcUSB, "USB device does not accept new addresses"},
	CodeHotplugTimeout:       {SrcHotplug, "HAL daemon timed out waiting for hotplug event"},
}

// Source reports which component signals this error code.
func (c ErrorCode) Source() SysSource {
	if info, ok := errorCodeInfo[c]; ok {
		return info.src
	}
	return SrcUnknown
}

// Message renders the paper-style log message for the code.
func (c ErrorCode) Message() string {
	if info, ok := errorCodeInfo[c]; ok {
		return info.msg
	}
	return "unknown error"
}

// String names the code for diagnostics.
func (c ErrorCode) String() string {
	switch c {
	case CodeHCICommandTimeout:
		return "HCI_CMD_TIMEOUT"
	case CodeHCIInvalidHandle:
		return "HCI_INVALID_HANDLE"
	case CodeL2CAPUnexpectedFrame:
		return "L2CAP_UNEXPECTED_FRAME"
	case CodeSDPConnectionRefused:
		return "SDP_REFUSED"
	case CodeSDPTimeout:
		return "SDP_TIMEOUT"
	case CodeSDPServiceMissing:
		return "SDP_SERVICE_MISSING"
	case CodeBNEPModuleMissing:
		return "BNEP_MODULE_MISSING"
	case CodeBNEPOccupied:
		return "BNEP_OCCUPIED"
	case CodeBNEPAddFailed:
		return "BNEP_ADD_FAILED"
	case CodeBCSPOutOfOrder:
		return "BCSP_OUT_OF_ORDER"
	case CodeBCSPMissing:
		return "BCSP_MISSING"
	case CodeUSBAddressStall:
		return "USB_ADDRESS_STALL"
	case CodeHotplugTimeout:
		return "HOTPLUG_TIMEOUT"
	default:
		return fmt.Sprintf("ErrorCode(%d)", int(c))
	}
}

// SimError is the error type raised by simulated stack layers. It carries
// the taxonomy code so that callers (the workload's failure detector) can
// classify without string matching.
type SimError struct {
	Code ErrorCode
	Op   string // the API the caller invoked, e.g. "l2cap.connect"
	Node string // node on which the error was raised
}

// Error implements the error interface.
func (e *SimError) Error() string {
	return fmt.Sprintf("%s: %s (%s on %s)", e.Code.Source(), e.Code.Message(), e.Op, e.Node)
}

// NewSimError builds a SimError.
func NewSimError(code ErrorCode, op, node string) *SimError {
	return &SimError{Code: code, Op: op, Node: node}
}

// At is the timestamped base of both record types.
type At struct {
	// T is the virtual instant of the record.
	T sim.Time
}

// Wall renders the record's instant as a wall-clock timestamp anchored at
// the campaign epoch.
func (a At) Wall() string { return sim.Wall(a.T).Format("2006-01-02 15:04:05.000") }
