package core

import (
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

func TestUserFailureTaxonomy(t *testing.T) {
	all := UserFailures()
	if len(all) != NumUserFailures {
		t.Fatalf("UserFailures() has %d entries, want %d", len(all), NumUserFailures)
	}
	if NumUserFailures != 10 {
		t.Errorf("taxonomy has %d user failures, paper's Table 1 has 10", NumUserFailures)
	}
	seen := map[string]bool{}
	for _, f := range all {
		if !f.Valid() {
			t.Errorf("%v not valid", f)
		}
		name := f.String()
		if seen[name] {
			t.Errorf("duplicate name %q", name)
		}
		seen[name] = true
		if f.Group() == GroupUnknown {
			t.Errorf("%v has no group", f)
		}
		back, err := ParseUserFailure(name)
		if err != nil || back != f {
			t.Errorf("ParseUserFailure(%q) = %v, %v", name, back, err)
		}
	}
	if UFUnknown.Valid() {
		t.Error("UFUnknown should be invalid")
	}
	if _, err := ParseUserFailure("bogus"); err == nil {
		t.Error("ParseUserFailure(bogus) should fail")
	}
}

func TestFailureGroups(t *testing.T) {
	tests := []struct {
		f    UserFailure
		want FailureGroup
	}{
		{UFInquiryScanFailed, GroupSearch},
		{UFNAPNotFound, GroupSearch},
		{UFSDPSearchFailed, GroupSearch},
		{UFConnectFailed, GroupConnect},
		{UFPANConnectFailed, GroupConnect},
		{UFBindFailed, GroupConnect},
		{UFSwitchRoleRequestFailed, GroupConnect},
		{UFSwitchRoleCommandFailed, GroupConnect},
		{UFPacketLoss, GroupDataTransfer},
		{UFDataMismatch, GroupDataTransfer},
	}
	for _, tt := range tests {
		if got := tt.f.Group(); got != tt.want {
			t.Errorf("%v.Group() = %v, want %v", tt.f, got, tt.want)
		}
	}
	if GroupSearch.String() != "Search" || GroupDataTransfer.String() != "Data Transfer" {
		t.Error("group names diverge from the paper")
	}
}

func TestSysSourceTaxonomy(t *testing.T) {
	all := SysSources()
	if len(all) != NumSysSources || len(all) != 7 {
		t.Fatalf("SysSources() = %d entries, want 7", len(all))
	}
	for _, s := range all {
		if !s.Valid() {
			t.Errorf("%v not valid", s)
		}
		back, err := ParseSysSource(s.String())
		if err != nil || back != s {
			t.Errorf("ParseSysSource(%q) = %v, %v", s.String(), back, err)
		}
	}
	stack := 0
	for _, s := range all {
		if s.BTStackRelated() {
			stack++
		}
	}
	if stack != 5 {
		t.Errorf("%d BT-stack sources, want 5 (HCI,L2CAP,SDP,BNEP,BCSP)", stack)
	}
	if SrcUSB.BTStackRelated() || SrcHotplug.BTStackRelated() {
		t.Error("USB/Hotplug should be OS/driver related")
	}
}

func TestErrorCodes(t *testing.T) {
	tests := []struct {
		code ErrorCode
		src  SysSource
	}{
		{CodeHCICommandTimeout, SrcHCI},
		{CodeHCIInvalidHandle, SrcHCI},
		{CodeL2CAPUnexpectedFrame, SrcL2CAP},
		{CodeSDPConnectionRefused, SrcSDP},
		{CodeSDPTimeout, SrcSDP},
		{CodeSDPServiceMissing, SrcSDP},
		{CodeBNEPModuleMissing, SrcBNEP},
		{CodeBNEPOccupied, SrcBNEP},
		{CodeBNEPAddFailed, SrcBNEP},
		{CodeBCSPOutOfOrder, SrcBCSP},
		{CodeBCSPMissing, SrcBCSP},
		{CodeUSBAddressStall, SrcUSB},
		{CodeHotplugTimeout, SrcHotplug},
	}
	for _, tt := range tests {
		if got := tt.code.Source(); got != tt.src {
			t.Errorf("%v.Source() = %v, want %v", tt.code, got, tt.src)
		}
		if tt.code.Message() == "unknown error" {
			t.Errorf("%v has no message", tt.code)
		}
	}
	if CodeUnknown.Source() != SrcUnknown {
		t.Error("CodeUnknown should map to SrcUnknown")
	}
}

func TestSimError(t *testing.T) {
	err := NewSimError(CodeHCICommandTimeout, "hci.switch_role", "Ipaq")
	msg := err.Error()
	for _, want := range []string{"HCI", "hci.switch_role", "Ipaq"} {
		if !contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestPacketTypes(t *testing.T) {
	all := PacketTypes()
	if len(all) != 6 {
		t.Fatalf("%d packet types, want 6", len(all))
	}
	payloads := map[PacketType]int{
		PTDM1: 17, PTDH1: 27, PTDM3: 121, PTDH3: 183, PTDM5: 224, PTDH5: 339,
	}
	slots := map[PacketType]int{
		PTDM1: 1, PTDH1: 1, PTDM3: 3, PTDH3: 3, PTDM5: 5, PTDH5: 5,
	}
	for _, p := range all {
		if got := p.Payload(); got != payloads[p] {
			t.Errorf("%v.Payload() = %d, want %d", p, got, payloads[p])
		}
		if got := p.Slots(); got != slots[p] {
			t.Errorf("%v.Slots() = %d, want %d", p, got, slots[p])
		}
	}
	for _, p := range []PacketType{PTDM1, PTDM3, PTDM5} {
		if !p.FEC() {
			t.Errorf("%v should be FEC coded", p)
		}
	}
	for _, p := range []PacketType{PTDH1, PTDH3, PTDH5} {
		if p.FEC() {
			t.Errorf("%v should be uncoded", p)
		}
	}
}

func TestRecoveryActions(t *testing.T) {
	all := RecoveryActions()
	if len(all) != NumRecoveryActions || len(all) != 7 {
		t.Fatalf("%d SIRAs, want 7", len(all))
	}
	for i, a := range all {
		if !a.Valid() {
			t.Errorf("%v invalid", a)
		}
		if int(a) != i+1 {
			t.Errorf("SIRA %v has ordinal %d, want %d (severity ordering)", a, int(a), i+1)
		}
	}
	if RANone.Valid() {
		t.Error("RANone should be invalid")
	}
	if RAIPSocketReset.String() != "IP socket reset" {
		t.Errorf("unexpected SIRA name %q", RAIPSocketReset)
	}
}

func TestUserReportSeverity(t *testing.T) {
	r := UserReport{Failure: UFConnectFailed, Recovery: RAAppRestart, Recovered: true}
	if got := r.Severity(); got != 4 {
		t.Errorf("Severity = %d, want 4", got)
	}
}

func TestRecordsJSONRoundTrip(t *testing.T) {
	in := UserReport{
		At:        12 * sim.Hour,
		Testbed:   "random",
		Node:      "Verde",
		Failure:   UFPacketLoss,
		Workload:  WLRandom,
		Packet:    PTDM1,
		SentPkts:  42,
		SDPFlag:   true,
		DistanceM: 5,
		ConnID:    7,
		Recovered: true,
		Recovery:  RABTConnectionReset,
		TTR:       2 * sim.Second,
	}
	blob, err := json.Marshal(&in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out UserReport
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out != in {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}

	se := SystemEntry{At: sim.Hour, Testbed: "random", Node: "Giallo",
		Source: SrcHCI, Code: CodeHCICommandTimeout, ConnID: 7}
	blob, err = json.Marshal(&se)
	if err != nil {
		t.Fatalf("marshal sys: %v", err)
	}
	var se2 SystemEntry
	if err := json.Unmarshal(blob, &se2); err != nil {
		t.Fatalf("unmarshal sys: %v", err)
	}
	if se2 != se {
		t.Errorf("system entry round trip mismatch: %+v vs %+v", se, se2)
	}
	if se.Message() == "" {
		t.Error("Message() empty")
	}
}

func TestWallRendering(t *testing.T) {
	a := At{T: 0}
	if got := a.Wall(); got != "2004-06-01 00:00:00.000" {
		t.Errorf("Wall() = %q (epoch should match the paper's campaign start)", got)
	}
}

func TestWorkloadAndAppNames(t *testing.T) {
	if WLRandom.String() != "random" || WLRealistic.String() != "realistic" || WLFixed.String() != "fixed" {
		t.Error("workload names changed")
	}
	apps := Apps()
	if len(apps) != 5 {
		t.Fatalf("%d apps, want 5", len(apps))
	}
	want := []string{"Web", "Mail", "FTP", "P2P", "Streaming"}
	for i, a := range apps {
		if a.String() != want[i] {
			t.Errorf("app %d = %q, want %q", i, a, want[i])
		}
	}
}
