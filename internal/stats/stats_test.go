package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(1, 2)) }

func TestParetoMoments(t *testing.T) {
	r := testRNG()
	p := Pareto{Xm: 10, Alpha: 2.5}
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(p.Sample(r))
	}
	want := p.Mean()
	if got := s.Mean(); math.Abs(got-want)/want > 0.05 {
		t.Errorf("Pareto mean = %v, want ~%v", got, want)
	}
	if s.Min() < p.Xm {
		t.Errorf("Pareto sample %v below scale %v", s.Min(), p.Xm)
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	p := Pareto{Xm: 1, Alpha: 1.0}
	if !math.IsInf(p.Mean(), 1) {
		t.Error("alpha<=1 should have infinite mean")
	}
}

func TestBoundedParetoRange(t *testing.T) {
	r := testRNG()
	p := BoundedPareto{L: 100, H: 10000, Alpha: 1.2}
	for i := 0; i < 10000; i++ {
		x := p.Sample(r)
		if x < p.L || x > p.H {
			t.Fatalf("BoundedPareto sample %v outside [%v,%v]", x, p.L, p.H)
		}
	}
}

func TestBoundedParetoHeavyTail(t *testing.T) {
	r := testRNG()
	p := BoundedPareto{L: 1, H: 1e6, Alpha: 1.1}
	small, large := 0, 0
	for i := 0; i < 20000; i++ {
		if p.Sample(r) < 10 {
			small++
		} else {
			large++
		}
	}
	// With alpha=1.1, P(X<10) ~ 1-10^-1.1 ~ 0.92: most mass near L but a
	// real tail remains.
	if small < large {
		t.Errorf("tail heavier than body: small=%d large=%d", small, large)
	}
	if large == 0 {
		t.Error("no tail mass at all")
	}
}

func TestUniformRangeAndMean(t *testing.T) {
	r := testRNG()
	u := Uniform{Lo: 5, Hi: 15}
	var s Summary
	for i := 0; i < 100000; i++ {
		x := u.Sample(r)
		if x < 5 || x >= 15 {
			t.Fatalf("Uniform sample %v outside [5,15)", x)
		}
		s.Add(x)
	}
	if got := s.Mean(); math.Abs(got-10) > 0.1 {
		t.Errorf("Uniform mean = %v, want ~10", got)
	}
}

func TestExponentialMean(t *testing.T) {
	r := testRNG()
	e := Exponential{Mean: 42}
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(e.Sample(r))
	}
	if got := s.Mean(); math.Abs(got-42)/42 > 0.03 {
		t.Errorf("Exponential mean = %v, want ~42", got)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := testRNG()
	l := LogNormal{Mu: math.Log(100), Sigma: 0.5}
	xs := make([]float64, 0, 50000)
	for i := 0; i < 50000; i++ {
		xs = append(xs, l.Sample(r))
	}
	med := Percentile(xs, 50)
	if math.Abs(med-100)/100 > 0.05 {
		t.Errorf("LogNormal median = %v, want ~100", med)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := testRNG()
	b := Binomial{N: 5, P: 0.5}
	var s Summary
	for i := 0; i < 100000; i++ {
		k := b.SampleInt(r)
		if k < 0 || k > 5 {
			t.Fatalf("Binomial sample %d outside [0,5]", k)
		}
		s.Add(float64(k))
	}
	if got := s.Mean(); math.Abs(got-2.5) > 0.05 {
		t.Errorf("Binomial mean = %v, want ~2.5", got)
	}
	if got := s.Var(); math.Abs(got-1.25) > 0.05 {
		t.Errorf("Binomial var = %v, want ~1.25", got)
	}
}

func TestPoissonMean(t *testing.T) {
	r := testRNG()
	p := Poisson{Lambda: 3.5}
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(p.Sample(r))
	}
	if got := s.Mean(); math.Abs(got-3.5) > 0.1 {
		t.Errorf("Poisson mean = %v, want ~3.5", got)
	}
	if z := (Poisson{Lambda: 0}).SampleInt(r); z != 0 {
		t.Errorf("Poisson(0) = %d, want 0", z)
	}
}

func TestUniformIntBounds(t *testing.T) {
	r := testRNG()
	u := UniformInt{Lo: 1, Hi: 20}
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		k := u.SampleInt(r)
		if k < 1 || k > 20 {
			t.Fatalf("UniformInt sample %d outside [1,20]", k)
		}
		seen[k] = true
	}
	if len(seen) != 20 {
		t.Errorf("UniformInt covered %d values, want 20", len(seen))
	}
}

func TestUniformIntPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for Hi<Lo")
		}
	}()
	UniformInt{Lo: 5, Hi: 4}.SampleInt(testRNG())
}

func TestBernoulliEdges(t *testing.T) {
	r := testRNG()
	if Bernoulli(r, 0) {
		t.Error("Bernoulli(0) = true")
	}
	if !Bernoulli(r, 1) {
		t.Error("Bernoulli(1) = false")
	}
	hits := 0
	for i := 0; i < 100000; i++ {
		if Bernoulli(r, 0.3) {
			hits++
		}
	}
	if f := float64(hits) / 100000; math.Abs(f-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", f)
	}
}

func TestWeightedChoice(t *testing.T) {
	r := testRNG()
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[WeightedChoice(r, w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	for _, w := range [][]float64{{}, {0, 0}, {-1, 2}} {
		w := w
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("want panic for weights %v", w)
				}
			}()
			WeightedChoice(testRNG(), w)
		}()
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty summary should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Unbiased variance of this classic dataset is 32/7.
	if got := s.Var(); math.Abs(got-32.0/7) > 1e-9 {
		t.Errorf("Var = %v, want %v", got, 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	// uint16 inputs keep values in a range where Welford arithmetic cannot
	// overflow; TTF/TTR observations live in a similar range.
	prop := func(a, b []uint16) bool {
		var all, left, right Summary
		for _, x := range a {
			all.Add(float64(x))
			left.Add(float64(x))
		}
		for _, x := range b {
			all.Add(float64(x))
			right.Add(float64(x))
		}
		left.Merge(right)
		return left.N() == all.N() &&
			math.Abs(left.Mean()-all.Mean()) < 1e-6*(1+math.Abs(all.Mean())) &&
			math.Abs(left.Var()-all.Var()) < 1e-6*(1+all.Var())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p, want float64
	}{{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) should be 0")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{1, 3})
	if math.Abs(out[0]-25) > 1e-9 || math.Abs(out[1]-75) > 1e-9 {
		t.Errorf("Normalize = %v, want [25 75]", out)
	}
	zero := Normalize([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("Normalize zeros = %v", zero)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.9, 10, 100} {
		h.Add(x)
	}
	counts := h.Counts()
	// -1,0,1.9 -> bin0; 2 -> bin1; 5 -> bin2; 9.9,10,100 -> bin4.
	want := []int{3, 1, 1, 0, 3}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("Counts = %v, want %v", counts, want)
		}
	}
	if h.N() != 8 {
		t.Errorf("N = %d, want 8", h.N())
	}
	shares := h.Shares()
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("shares sum to %v, want 100", sum)
	}
	if h.BinLabel(0) != "[0,2)" {
		t.Errorf("BinLabel(0) = %q", h.BinLabel(0))
	}
	if r := h.Render(20); len(r) == 0 {
		t.Error("Render produced nothing")
	}
}

func TestHistogramPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for bad histogram spec")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestCurveKnee(t *testing.T) {
	// Piecewise curve with a sharp knee at x=330: steep drop before,
	// near-flat after — shaped like the paper's Figure 2 inset.
	var c Curve
	for x := 10.0; x <= 1000; x += 10 {
		var y float64
		if x <= 330 {
			y = 100 - (x-10)/320*80 // 100 -> 20
		} else {
			y = 20 - (x-330)/670*2 // 20 -> 18
		}
		c.Append(x, y)
	}
	knee, idx := c.Knee()
	if idx < 0 {
		t.Fatal("no knee found")
	}
	if knee < 250 || knee > 420 {
		t.Errorf("knee at %v, want near 330", knee)
	}
	if !c.Decreasing() {
		t.Error("test curve should be decreasing")
	}
}

func TestCurveKneeDegenerate(t *testing.T) {
	var c Curve
	if _, idx := c.Knee(); idx != -1 {
		t.Error("empty curve should report no knee")
	}
	c.Append(1, 5)
	if x, _ := c.Knee(); x != 1 {
		t.Errorf("1-point knee = %v", x)
	}
	c.Append(2, 5)
	c.Append(3, 5)
	if x, _ := c.Knee(); x != 1 {
		t.Errorf("flat-curve knee = %v, want first x", x)
	}
}

func TestCurveAppendPanicsOnNonIncreasingX(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for non-increasing x")
		}
	}()
	var c Curve
	c.Append(1, 1)
	c.Append(1, 2)
}

func TestSortedCopy(t *testing.T) {
	in := []float64{3, 1, 2}
	out := SortedCopy(in)
	if out[0] != 1 || out[2] != 3 {
		t.Errorf("SortedCopy = %v", out)
	}
	if in[0] != 3 {
		t.Error("SortedCopy mutated input")
	}
}
