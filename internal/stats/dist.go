// Package stats supplies the probability distributions, summary estimators
// and curve utilities used across the reproduction: Pareto idle times for the
// workload (per Crovella–Bestavros), power-law resource sizes for the
// realistic traffic models, binomial packet-type draws for the random
// workload, and the knee detection that picks the coalescence window in the
// sensitivity analysis of Figure 2.
//
// Two properties matter to the streaming/sweep planes built on top:
//
//   - Summary (Welford) and Histogram accumulate in a single pass with O(1)
//     state and support Merge, so per-shard accumulations combine into
//     campaign totals exactly (the shard-merge associativity tests pin
//     this), which is what keeps month-scale streaming aggregation and
//     checkpointable sweeps possible.
//   - Estimate/CI95 turn per-seed observations into mean ± 95 % confidence
//     intervals (Student-t for small seed counts), the cell type of every
//     sweep table.
package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Sampler draws float64 variates from some distribution.
type Sampler interface {
	Sample(r *rand.Rand) float64
}

// Pareto is the (Type I) Pareto distribution with scale xm > 0 and shape
// alpha > 0. The paper models user passive off time as Pareto with shape
// 1.5, following Crovella–Bestavros.
type Pareto struct {
	Xm    float64
	Alpha float64
}

var _ Sampler = Pareto{}

// Sample draws a Pareto variate by inversion.
func (p Pareto) Sample(r *rand.Rand) float64 {
	u := 1 - r.Float64() // in (0, 1]
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Mean returns the distribution mean, or +Inf when alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// BoundedPareto is a Pareto truncated to [L, H], the standard model for
// Web-transfer sizes (heavy tail, but no infinite documents).
type BoundedPareto struct {
	L, H  float64
	Alpha float64
}

var _ Sampler = BoundedPareto{}

// Sample draws by inversion of the truncated CDF.
func (p BoundedPareto) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	la := math.Pow(p.L, p.Alpha)
	ha := math.Pow(p.H, p.Alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.Alpha)
	return math.Min(math.Max(x, p.L), p.H)
}

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

var _ Sampler = Uniform{}

// Sample draws a uniform variate.
func (u Uniform) Sample(r *rand.Rand) float64 {
	return u.Lo + r.Float64()*(u.Hi-u.Lo)
}

// Exponential is the exponential distribution with the given Mean.
type Exponential struct {
	Mean float64
}

var _ Sampler = Exponential{}

// Sample draws an exponential variate.
func (e Exponential) Sample(r *rand.Rand) float64 {
	return r.ExpFloat64() * e.Mean
}

// LogNormal is the log-normal distribution parameterised by the mean Mu and
// standard deviation Sigma of the underlying normal.
type LogNormal struct {
	Mu, Sigma float64
}

var _ Sampler = LogNormal{}

// Sample draws a log-normal variate.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Binomial draws the number of successes in N independent trials with
// success probability P. The random workload uses it to pick among the six
// baseband packet types.
type Binomial struct {
	N int
	P float64
}

var _ Sampler = Binomial{}

// Sample draws a binomial variate (as a float64, to satisfy Sampler).
func (b Binomial) Sample(r *rand.Rand) float64 { return float64(b.SampleInt(r)) }

// SampleInt draws a binomial variate by direct simulation; N is small
// everywhere we use it (N=5 for packet types), so this is both exact and
// fast enough.
func (b Binomial) SampleInt(r *rand.Rand) int {
	k := 0
	for i := 0; i < b.N; i++ {
		if r.Float64() < b.P {
			k++
		}
	}
	return k
}

// Poisson draws from a Poisson distribution with the given mean Lambda,
// used for interference burst arrivals.
type Poisson struct {
	Lambda float64
}

var _ Sampler = Poisson{}

// Sample draws a Poisson variate (Knuth's method; Lambda is modest in all
// our uses).
func (p Poisson) Sample(r *rand.Rand) float64 { return float64(p.SampleInt(r)) }

// SampleInt draws a Poisson variate as an int.
func (p Poisson) SampleInt(r *rand.Rand) int {
	if p.Lambda <= 0 {
		return 0
	}
	limit := math.Exp(-p.Lambda)
	k := 0
	prod := r.Float64()
	for prod > limit {
		k++
		prod *= r.Float64()
	}
	return k
}

// UniformInt draws integers uniformly from [Lo, Hi] inclusive.
type UniformInt struct {
	Lo, Hi int
}

// SampleInt draws a uniform integer.
func (u UniformInt) SampleInt(r *rand.Rand) int {
	if u.Hi < u.Lo {
		panic(fmt.Sprintf("stats: UniformInt with Hi %d < Lo %d", u.Hi, u.Lo))
	}
	return u.Lo + r.IntN(u.Hi-u.Lo+1)
}

// Bernoulli reports true with probability P.
func Bernoulli(r *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// WeightedChoice picks an index from weights proportionally. Weights must be
// non-negative with a positive sum; otherwise it panics, since a silent
// fallback would corrupt calibrated distributions.
func WeightedChoice(r *rand.Rand, weights []float64) int {
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("stats: negative or NaN weight %v at index %d", w, i))
		}
		total += w
	}
	if total <= 0 {
		panic("stats: WeightedChoice with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
