package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram buckets observations into fixed-width bins over [Lo, Hi); values
// outside the range land in saturating edge bins. It backs the text-mode
// "figures" of the btrepro output and the streaming Figure 3b view.
type Histogram struct {
	Lo, Hi float64
	bins   []int
	n      int
}

// NewHistogram creates a histogram with nbins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram spec [%v,%v) x %d", lo, hi, nbins))
	}
	return &Histogram{Lo: lo, Hi: hi, bins: make([]int, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.bins)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
	h.n++
}

// N reports the number of recorded observations.
func (h *Histogram) N() int { return h.n }

// Merge folds another histogram into h, as if all of o's observations had
// been Added to h. Both histograms must share the same binning; per-shard
// histograms merge into campaign totals with it.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.bins) != len(o.bins) {
		panic(fmt.Sprintf("stats: merging histograms with different binning: [%v,%v)x%d vs [%v,%v)x%d",
			h.Lo, h.Hi, len(h.bins), o.Lo, o.Hi, len(o.bins)))
	}
	for i, c := range o.bins {
		h.bins[i] += c
	}
	h.n += o.n
}

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.bins))
	copy(out, h.bins)
	return out
}

// Shares returns per-bin percentages of the total.
func (h *Histogram) Shares() []float64 {
	xs := make([]float64, len(h.bins))
	for i, c := range h.bins {
		xs[i] = float64(c)
	}
	return Normalize(xs)
}

// BinLabel renders the half-open interval covered by bin i.
func (h *Histogram) BinLabel(i int) string {
	w := (h.Hi - h.Lo) / float64(len(h.bins))
	return fmt.Sprintf("[%.0f,%.0f)", h.Lo+float64(i)*w, h.Lo+float64(i+1)*w)
}

// Render draws a horizontal-bar text chart of the bin shares, width columns
// wide at the longest bar.
func (h *Histogram) Render(width int) string {
	shares := h.Shares()
	maxShare := 0.0
	for _, s := range shares {
		if s > maxShare {
			maxShare = s
		}
	}
	var b strings.Builder
	for i, s := range shares {
		bar := 0
		if maxShare > 0 {
			bar = int(math.Round(s / maxShare * float64(width)))
		}
		fmt.Fprintf(&b, "%-14s %6.2f%% %s\n", h.BinLabel(i), s, strings.Repeat("#", bar))
	}
	return b.String()
}

// Curve is a sampled monotone-x function y = f(x), used by the coalescence
// sensitivity analysis (tuple count versus window size).
type Curve struct {
	X, Y []float64
}

// Append adds a point; x values must arrive in strictly increasing order.
func (c *Curve) Append(x, y float64) {
	if n := len(c.X); n > 0 && x <= c.X[n-1] {
		panic(fmt.Sprintf("stats: curve x not increasing: %v after %v", x, c.X[n-1]))
	}
	c.X = append(c.X, x)
	c.Y = append(c.Y, y)
}

// Len reports the number of points.
func (c *Curve) Len() int { return len(c.X) }

// Knee locates the "knee" of a decreasing curve: the point that maximises
// the distance to the chord joining the first and last points (the standard
// Kneedle construction). The paper's sensitivity analysis picks the window
// at the beginning of the knee of tuples-vs-window; this function is what
// btrepro uses to recover the 330 s choice automatically.
func (c *Curve) Knee() (x float64, idx int) {
	n := len(c.X)
	if n == 0 {
		return 0, -1
	}
	if n < 3 {
		return c.X[0], 0
	}
	// Normalise both axes to [0,1] so the chord distance is scale-free.
	x0, x1 := c.X[0], c.X[n-1]
	var yMin, yMax float64 = math.Inf(1), math.Inf(-1)
	for _, y := range c.Y {
		yMin = math.Min(yMin, y)
		yMax = math.Max(yMax, y)
	}
	if x1 == x0 || yMax == yMin {
		return c.X[0], 0
	}
	bestD, bestI := math.Inf(-1), 0
	for i := 0; i < n; i++ {
		nx := (c.X[i] - x0) / (x1 - x0)
		ny := (c.Y[i] - yMin) / (yMax - yMin)
		// Distance from (nx,ny) to the chord y = 1 - x (decreasing curve
		// normalised corners (0,1)..(1,0)), up to the constant 1/sqrt(2).
		d := 1 - nx - ny
		if d > bestD {
			bestD, bestI = d, i
		}
	}
	return c.X[bestI], bestI
}

// Decreasing reports whether the curve's y values are non-increasing, an
// invariant of the tuple-count-versus-window curve that tests assert.
func (c *Curve) Decreasing() bool {
	for i := 1; i < len(c.Y); i++ {
		if c.Y[i] > c.Y[i-1] {
			return false
		}
	}
	return true
}

// SortedCopy returns xs sorted ascending without modifying the input.
func SortedCopy(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}
