package stats

import (
	"encoding/json"
	"testing"
)

// TestSummarySnapshotRoundTrip pins that a Summary serialized mid-stream and
// restored continues bit-identically: restore → add the rest → merge equals
// the never-interrupted accumulator, through a JSON disk round trip.
func TestSummarySnapshotRoundTrip(t *testing.T) {
	xs := make([]float64, 0, 1000)
	v := 0.5
	for i := 0; i < 1000; i++ {
		v = v*3.9*(1-v) + 1e-9 // logistic map: irregular, exactly reproducible
		xs = append(xs, v*1e3)
	}
	var whole Summary
	for _, x := range xs {
		whole.Add(x)
	}

	var first Summary
	for _, x := range xs[:500] {
		first.Add(x)
	}
	blob, err := json.Marshal(first.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap SummarySnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatal(err)
	}
	resumed := RestoreSummary(snap)
	for _, x := range xs[500:] {
		resumed.Add(x)
	}
	if resumed != whole {
		t.Errorf("resumed summary diverges: %+v vs %+v", resumed, whole)
	}

	// Merge path: restored halves merge exactly as the live halves do (the
	// merge itself is a different float evaluation order than sequential
	// Add, so the reference is a live merge, not the sequential whole).
	var second Summary
	for _, x := range xs[500:] {
		second.Add(x)
	}
	live := first
	live.Merge(second)
	merged := RestoreSummary(first.Snapshot())
	merged.Merge(RestoreSummary(second.Snapshot()))
	if merged != live {
		t.Errorf("merged restored summaries diverge: %+v vs %+v", merged, live)
	}

	// Empty summary round trip.
	var empty Summary
	if got := RestoreSummary(empty.Snapshot()); got != empty {
		t.Errorf("empty summary round trip changed state: %+v", got)
	}
}

// TestHistogramSnapshotRoundTrip pins the histogram checkpoint path,
// including saturating edge bins and the merge-after-restore law.
func TestHistogramSnapshotRoundTrip(t *testing.T) {
	whole := NewHistogram(0, 100, 10)
	first := NewHistogram(0, 100, 10)
	second := NewHistogram(0, 100, 10)
	for i := -20; i < 180; i++ {
		x := float64(i) * 0.77
		whole.Add(x)
		if i < 80 {
			first.Add(x)
		} else {
			second.Add(x)
		}
	}
	blob, err := json.Marshal(first.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap HistogramSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatal(err)
	}
	resumed, err := RestoreHistogram(snap)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Merge(second)
	if resumed.N() != whole.N() {
		t.Fatalf("resumed histogram count %d, want %d", resumed.N(), whole.N())
	}
	rc, wc := resumed.Counts(), whole.Counts()
	for i := range wc {
		if rc[i] != wc[i] {
			t.Errorf("bin %d: %d vs %d", i, rc[i], wc[i])
		}
	}

	// Invalid snapshots must be rejected.
	if _, err := RestoreHistogram(HistogramSnapshot{Lo: 1, Hi: 0, Bins: []int{1}}); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := RestoreHistogram(HistogramSnapshot{Lo: 0, Hi: 1, Bins: []int{-1}}); err == nil {
		t.Error("negative bin accepted")
	}
}
