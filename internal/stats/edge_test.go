package stats

import (
	"math"
	"testing"
)

// The sweep engine leans on CI95/TCrit95 and the shard-merge algebra in
// exactly the regimes ordinary runs rarely visit: one-seed sweeps, two-seed
// sweeps (df = 1, the fattest t critical value), zero-variance columns, and
// shards that collected nothing. This file pins those edges table-driven.

// TestCI95Edges pins the estimator's degenerate and small-sample behavior.
func TestCI95Edges(t *testing.T) {
	cases := []struct {
		name     string
		xs       []float64
		wantMean float64
		wantHalf float64
		wantN    int
	}{
		{"empty", nil, 0, 0, 0},
		{"n=1", []float64{42}, 42, 0, 1},
		{"n=1 negative", []float64{-3.5}, -3.5, 0, 1},
		// n=2: df=1, t=12.706; sd of {1,3} is sqrt(2), half = 12.706*sqrt(2)/sqrt(2).
		{"n=2", []float64{1, 3}, 2, 12.706, 2},
		{"n=2 zero variance", []float64{7, 7}, 7, 0, 2},
		{"n=5 zero variance", []float64{2, 2, 2, 2, 2}, 2, 0, 5},
		// n=31: beyond the t table, z = 1.96; all values equal → half 0.
		{"n=31 zero variance", make31(9), 9, 0, 31},
	}
	for _, tc := range cases {
		e := CI95(tc.xs)
		if e.N != tc.wantN || !approxEq(e.Mean, tc.wantMean, 1e-12) || !approxEq(e.Half, tc.wantHalf, 1e-9) {
			t.Errorf("%s: CI95 = %+v, want mean %v half %v n %d",
				tc.name, e, tc.wantMean, tc.wantHalf, tc.wantN)
		}
		if e.Half != 0 && tc.wantHalf == 0 {
			t.Errorf("%s: zero-variance sample produced half-width %v", tc.name, e.Half)
		}
	}
}

// make31 builds 31 copies of x (one past the t table's last entry).
func make31(x float64) []float64 {
	xs := make([]float64, 31)
	for i := range xs {
		xs[i] = x
	}
	return xs
}

// TestTCrit95Table pins the t-table lookup at its edges: first entry,
// last entry, the normal fallback, and invalid degrees of freedom.
func TestTCrit95Table(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{-1, 0}, {0, 0}, // no estimate from fewer than two samples
		{1, 12.706},  // two samples: the fattest interval
		{2, 4.303},   // three samples
		{29, 2.045},  // deep in the table
		{30, 2.042},  // last tabulated entry
		{31, 1.96},   // first normal-approximation df
		{1000, 1.96}, // far beyond
	}
	for _, tc := range cases {
		if got := TCrit95(tc.df); got != tc.want {
			t.Errorf("TCrit95(%d) = %v, want %v", tc.df, got, tc.want)
		}
	}
	// Monotonicity across the whole table: more data, tighter intervals.
	for df := 2; df <= 31; df++ {
		if TCrit95(df) >= TCrit95(df-1) {
			t.Errorf("TCrit95 not decreasing at df=%d: %v >= %v", df, TCrit95(df), TCrit95(df-1))
		}
	}
}

// TestEstimateFormatting pins the small-N rendering: below two samples an
// estimate prints without a ± suffix.
func TestEstimateFormatting(t *testing.T) {
	cases := []struct {
		e    Estimate
		str  string
		fmtd string
	}{
		{Estimate{Mean: 5, N: 0}, "5.00", "5.0"},
		{Estimate{Mean: 5, N: 1}, "5.00", "5.0"},
		{Estimate{Mean: 5, Half: 1.25, N: 4}, "5.00±1.25", "5.0±1.2"},
	}
	for _, tc := range cases {
		if got := tc.e.String(); got != tc.str {
			t.Errorf("String() = %q, want %q", got, tc.str)
		}
		if got := tc.e.Format("%.1f"); got != tc.fmtd {
			t.Errorf("Format() = %q, want %q", got, tc.fmtd)
		}
	}
}

// TestSummaryMergeEmptyShards pins the merge identities the sharded
// aggregation plane hits when a shard collected nothing: empty-into-X,
// X-into-empty, and empty-into-empty must all behave like no-ops or copies.
func TestSummaryMergeEmptyShards(t *testing.T) {
	full := func() Summary {
		var s Summary
		for _, x := range []float64{3, 1, 4, 1.5} {
			s.Add(x)
		}
		return s
	}

	// X-into-empty: the copy case.
	var intoEmpty Summary
	intoEmpty.Merge(full())
	if want := full(); intoEmpty != want {
		t.Errorf("empty.Merge(full) = %+v, want %+v", intoEmpty, want)
	}

	// Empty-into-X: the no-op case — every statistic unchanged.
	withEmpty := full()
	withEmpty.Merge(Summary{})
	if want := full(); withEmpty != want {
		t.Errorf("full.Merge(empty) = %+v, want %+v", withEmpty, want)
	}

	// Empty-into-empty stays empty and defined.
	var both Summary
	both.Merge(Summary{})
	if both.N() != 0 || both.Mean() != 0 || both.Var() != 0 || both.Min() != 0 || both.Max() != 0 {
		t.Errorf("empty.Merge(empty) = %+v, want zeros", both)
	}
	if math.IsNaN(both.StdDev()) {
		t.Error("empty merge produced NaN standard deviation")
	}

	// A chain interleaving empty shards equals the dense fold.
	var chain Summary
	for i := 0; i < 3; i++ {
		chain.Merge(Summary{})
		chain.Merge(full())
	}
	var dense Summary
	for i := 0; i < 3; i++ {
		dense.Merge(full())
	}
	if chain.N() != dense.N() || !approxEq(chain.Mean(), dense.Mean(), 1e-12) ||
		!approxEq(chain.Var(), dense.Var(), 1e-12) {
		t.Errorf("interleaved empty shards changed the fold: %+v vs %+v", chain, dense)
	}
}

// TestHistogramMergeEmptyShards pins histogram merge with empty shards and
// the nil-shard guard.
func TestHistogramMergeEmptyShards(t *testing.T) {
	full := func() *Histogram {
		h := NewHistogram(0, 10, 5)
		for _, x := range []float64{1, 2, 2, 9, -1, 11} {
			h.Add(x)
		}
		return h
	}
	want := full().Counts()

	h := full()
	h.Merge(NewHistogram(0, 10, 5)) // empty, same binning
	if h.N() != 6 {
		t.Fatalf("merge with empty shard changed N: %d", h.N())
	}
	for i, c := range h.Counts() {
		if c != want[i] {
			t.Errorf("bin %d changed after empty merge: %d != %d", i, c, want[i])
		}
	}

	empty := NewHistogram(0, 10, 5)
	empty.Merge(full())
	if empty.N() != 6 {
		t.Fatalf("empty.Merge(full) N = %d, want 6", empty.N())
	}
	for i, c := range empty.Counts() {
		if c != want[i] {
			t.Errorf("empty.Merge(full) bin %d = %d, want %d", i, c, want[i])
		}
	}

	// nil shard: the guard must make it a no-op, not a panic.
	h2 := full()
	h2.Merge(nil)
	if h2.N() != 6 {
		t.Errorf("Merge(nil) changed N: %d", h2.N())
	}
}
