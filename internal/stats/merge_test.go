package stats

import (
	"math"
	"testing"
)

// shardStreams builds deterministic per-shard observation streams, the shape
// the sharded aggregation plane produces: several shards, uneven sizes.
func shardStreams() [][]float64 {
	streams := make([][]float64, 4)
	x := 0.5
	for i := range streams {
		n := 7 + 13*i
		for j := 0; j < n; j++ {
			// A fixed quadratic-ish sequence: spread-out, non-monotonic.
			x = math.Mod(x*37.0+float64(j)*1.7, 103.0)
			streams[i] = append(streams[i], x-51.5)
		}
	}
	return streams
}

func approxEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestSummaryMergeAssociativeCommutative proves the shard-merge algebra the
// sweep engine relies on: merge(a, b) == merge(b, a) and
// merge(merge(a, b), c) == merge(a, merge(b, c)) up to float rounding, and
// both equal the single-stream fold.
func TestSummaryMergeAssociativeCommutative(t *testing.T) {
	streams := shardStreams()
	shards := make([]Summary, len(streams))
	var single Summary
	for i, xs := range streams {
		for _, x := range xs {
			shards[i].Add(x)
			single.Add(x)
		}
	}

	var ab, ba Summary
	ab.Merge(shards[0])
	ab.Merge(shards[1])
	ba.Merge(shards[1])
	ba.Merge(shards[0])
	if ab.N() != ba.N() || !approxEq(ab.Mean(), ba.Mean(), 1e-12) ||
		!approxEq(ab.Var(), ba.Var(), 1e-12) ||
		ab.Min() != ba.Min() || ab.Max() != ba.Max() {
		t.Errorf("merge not commutative: %+v vs %+v", ab, ba)
	}

	var left, right Summary
	left.Merge(shards[0])
	left.Merge(shards[1])
	left.Merge(shards[2])
	var bc Summary
	bc.Merge(shards[1])
	bc.Merge(shards[2])
	right.Merge(shards[0])
	right.Merge(bc)
	if left.N() != right.N() || !approxEq(left.Mean(), right.Mean(), 1e-12) ||
		!approxEq(left.Var(), right.Var(), 1e-12) {
		t.Errorf("merge not associative: %+v vs %+v", left, right)
	}

	var merged Summary
	for i := range shards {
		merged.Merge(shards[i])
	}
	if merged.N() != single.N() {
		t.Fatalf("merged N = %d, single-stream N = %d", merged.N(), single.N())
	}
	if !approxEq(merged.Mean(), single.Mean(), 1e-12) ||
		!approxEq(merged.Var(), single.Var(), 1e-9) ||
		merged.Min() != single.Min() || merged.Max() != single.Max() {
		t.Errorf("merged summary diverges from single stream:\nmerged %+v\nsingle %+v", merged, single)
	}
}

// TestHistogramMergeMatchesSingleStream proves histogram shard-merge is exact
// (integer bins): merged counts equal the single-stream fold, and merge is
// commutative.
func TestHistogramMergeMatchesSingleStream(t *testing.T) {
	streams := shardStreams()
	single := NewHistogram(-60, 60, 12)
	shards := make([]*Histogram, len(streams))
	for i, xs := range streams {
		shards[i] = NewHistogram(-60, 60, 12)
		for _, x := range xs {
			shards[i].Add(x)
			single.Add(x)
		}
	}

	ab := NewHistogram(-60, 60, 12)
	ab.Merge(shards[0])
	ab.Merge(shards[1])
	ba := NewHistogram(-60, 60, 12)
	ba.Merge(shards[1])
	ba.Merge(shards[0])
	abc, bac := ab.Counts(), ba.Counts()
	for i := range abc {
		if abc[i] != bac[i] {
			t.Fatalf("histogram merge not commutative at bin %d: %d vs %d", i, abc[i], bac[i])
		}
	}

	merged := NewHistogram(-60, 60, 12)
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.N() != single.N() {
		t.Fatalf("merged N = %d, single N = %d", merged.N(), single.N())
	}
	mc, sc := merged.Counts(), single.Counts()
	for i := range mc {
		if mc[i] != sc[i] {
			t.Errorf("bin %d: merged %d, single %d", i, mc[i], sc[i])
		}
	}
}

// TestHistogramMergePanicsOnBinningMismatch pins the guard against merging
// incompatible shards.
func TestHistogramMergePanicsOnBinningMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for binning mismatch")
		}
	}()
	NewHistogram(0, 10, 5).Merge(NewHistogram(0, 10, 6))
}

// TestCI95 pins the confidence-interval helper: known small-sample values
// and the degenerate cases.
func TestCI95(t *testing.T) {
	if e := CI95(nil); e.Mean != 0 || e.Half != 0 || e.N != 0 {
		t.Errorf("empty CI95 = %+v", e)
	}
	if e := CI95([]float64{5}); e.Mean != 5 || e.Half != 0 {
		t.Errorf("single-sample CI95 = %+v", e)
	}
	// n=4, xs = {1,2,3,4}: mean 2.5, sd = sqrt(5/3), half = 3.182*sd/2.
	e := CI95([]float64{1, 2, 3, 4})
	wantHalf := 3.182 * math.Sqrt(5.0/3.0) / 2
	if !approxEq(e.Mean, 2.5, 1e-12) || !approxEq(e.Half, wantHalf, 1e-9) {
		t.Errorf("CI95 = %+v, want mean 2.5 half %.4f", e, wantHalf)
	}
	// Large-sample fallback uses z = 1.96.
	if got := TCrit95(200); got != 1.96 {
		t.Errorf("TCrit95(200) = %v", got)
	}
	if got := TCrit95(0); got != 0 {
		t.Errorf("TCrit95(0) = %v", got)
	}
	// Summary-side accessor agrees with the slice helper.
	var s Summary
	for _, x := range []float64{1, 2, 3, 4} {
		s.Add(x)
	}
	if se := s.CI95(); se != e {
		t.Errorf("Summary.CI95 %+v != CI95 %+v", se, e)
	}
}
