package stats

import (
	"fmt"
	"math"
)

// Estimate is a mean with a 95 % confidence half-width, as produced by a
// multi-seed sweep: Mean ± Half covers the true value with 95 % confidence
// under the usual normality assumption for seed-to-seed variation.
type Estimate struct {
	Mean float64
	Half float64 // 95 % CI half-width (0 for fewer than 2 samples)
	N    int
}

// String renders the estimate as "mean±half".
func (e Estimate) String() string {
	if e.N < 2 {
		return fmt.Sprintf("%.2f", e.Mean)
	}
	return fmt.Sprintf("%.2f±%.2f", e.Mean, e.Half)
}

// Format renders with an explicit printf verb for both numbers, e.g.
// Format("%.1f") -> "12.3±0.4".
func (e Estimate) Format(verb string) string {
	if e.N < 2 {
		return fmt.Sprintf(verb, e.Mean)
	}
	return fmt.Sprintf(verb+"±"+verb, e.Mean, e.Half)
}

// tTable95 holds two-sided 95 % Student-t critical values for 1..30 degrees
// of freedom; beyond 30 the normal approximation 1.96 is used. Sweeps run a
// handful to a few dozen seeds, so the small-sample correction matters.
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCrit95 returns the two-sided 95 % Student-t critical value for df degrees
// of freedom.
func TCrit95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tTable95) {
		return tTable95[df-1]
	}
	return 1.96
}

// CI95 computes the sample mean and its 95 % confidence half-width from
// independent observations (one per seed). Fewer than two observations give
// a zero half-width.
func CI95(xs []float64) Estimate {
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	return s.CI95()
}

// CI95 reports the summary's mean ± 95 % confidence half-width.
func (s *Summary) CI95() Estimate {
	e := Estimate{Mean: s.Mean(), N: s.N()}
	if s.n >= 2 {
		e.Half = TCrit95(s.n-1) * s.StdDev() / math.Sqrt(float64(s.n))
	}
	return e
}
