package stats

import (
	"math"
	"sort"
)

// Summary accumulates running statistics over a stream of observations using
// Welford's algorithm, so single-pass accumulation stays numerically stable
// over the hundreds of thousands of TTF/TTR samples a campaign produces.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N reports the number of observations.
func (s *Summary) N() int { return s.n }

// Mean reports the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Sum reports the total of the observations (mean times count).
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Var reports the unbiased sample variance (0 when fewer than 2 samples).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev reports the unbiased sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min reports the smallest observation (0 when empty).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max reports the largest observation (0 when empty).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Merge folds another summary into s, as if all of o's observations had been
// Added to s. It lets per-node summaries combine into campaign totals.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := float64(s.n + o.n)
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/n
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/n
	s.mean, s.m2 = mean, m2
	s.n += o.n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// Percentile returns the p-th percentile (0..100) of xs by linear
// interpolation, without modifying xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean computes the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Normalize scales xs so it sums to 100, returning percentage shares.
// An all-zero input returns a zero slice of the same length.
func Normalize(xs []float64) []float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	out := make([]float64, len(xs))
	if total == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / total * 100
	}
	return out
}
