package stats

import "fmt"

// Checkpoint snapshots: Summary and Histogram are the only stats types with
// unexported accumulation state, and both sit inside analysis.Aggregates —
// the state a killed collection sink must persist and restore digit-for-
// digit. A snapshot is the exact internal state as exported, JSON-friendly
// fields; restoring one reproduces the accumulator bit-identically (Go's
// JSON encoder emits shortest round-trip float literals, so even the Welford
// mean/M2 running sums survive a disk round trip unchanged).

// SummarySnapshot is the serializable state of a Summary.
type SummarySnapshot struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Snapshot captures the summary's exact accumulation state.
func (s *Summary) Snapshot() SummarySnapshot {
	return SummarySnapshot{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max}
}

// RestoreSummary rebuilds a Summary from a snapshot; subsequent Adds and
// Merges continue exactly as if the accumulator had never been serialized.
func RestoreSummary(snap SummarySnapshot) Summary {
	return Summary{n: snap.N, mean: snap.Mean, m2: snap.M2, min: snap.Min, max: snap.Max}
}

// HistogramSnapshot is the serializable state of a Histogram. The
// observation count is not stored: it is always the sum of the bin counts
// (every Add increments exactly one saturating bin).
type HistogramSnapshot struct {
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
	Bins []int   `json:"bins"`
}

// Snapshot captures the histogram's binning and counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{Lo: h.Lo, Hi: h.Hi, Bins: h.Counts()}
}

// RestoreHistogram rebuilds a Histogram from a snapshot.
func RestoreHistogram(snap HistogramSnapshot) (*Histogram, error) {
	if len(snap.Bins) == 0 || snap.Hi <= snap.Lo {
		return nil, fmt.Errorf("stats: invalid histogram snapshot [%v,%v) x %d",
			snap.Lo, snap.Hi, len(snap.Bins))
	}
	h := NewHistogram(snap.Lo, snap.Hi, len(snap.Bins))
	for i, c := range snap.Bins {
		if c < 0 {
			return nil, fmt.Errorf("stats: negative bin count %d in histogram snapshot", c)
		}
		h.bins[i] = c
		h.n += c
	}
	return h, nil
}
