package workload

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/hci"
	"repro/internal/logging"
	"repro/internal/pan"
	"repro/internal/recovery"
	"repro/internal/sdp"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// cyclePlan is the sampled parameter set of one BlueTest cycle (the random
// variables S, SDP, B, N, L_S, L_R of the paper's §3).
type cyclePlan struct {
	scan bool
	sdp  bool
	pkt  core.PacketType
	app  core.AppKind

	sendN, recvN       int
	sendSize, recvSize int
	paced              bool
}

// Client is one BlueTest client instance, running on a PANU host.
type Client struct {
	cfg     Config
	world   *sim.World
	host    *stack.Host
	napHost *stack.Host
	testLog *logging.TestLog
	cascade *recovery.Cascade
	rng     *rand.Rand

	counters *Counters

	running bool
	stopped bool

	// Connection state (persists across consecutive realistic cycles).
	hd          hci.Handle
	conn        *pan.Conn
	pipe        *stack.Pipe
	connectedAt sim.Time
	cyclesLeft  int
	cycleIdx    int
	idleBefore  sim.Time
	reusedIdle  bool
	freshSDP    bool
	cycleFailed bool

	lastFailureAt sim.Time
	plan          cyclePlan

	// lastPhaseFail[p] is the instant of this node's previous failure in
	// protocol phase p (-1 before the first) — the O(1) windowed-recurrence
	// state behind the collection-time transience verdict.
	lastPhaseFail [int(core.NumFailurePhases) + 1]sim.Time

	// Transfer progress, preserved across masked-loss retries.
	sendLeft, recvLeft int

	// Phase callbacks as pre-bound method values: the client schedules
	// hundreds of thousands of phase transitions per virtual day, and a
	// fresh method-value closure per schedule was one of the larger
	// allocation sources in the campaign profile.
	fnCycleStart, fnSearchPhase, fnSDPPhase, fnConnectPhase func()
	fnBindPhase, fnBindDo, fnTransferPhase, fnTransferLoop  func()
	fnDisconnectPhase                                       func()
}

// NewClient builds a BlueTest client for a PANU host targeting the NAP.
func NewClient(cfg Config, world *sim.World, host, napHost *stack.Host, testLog *logging.TestLog) *Client {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if host == nil || host.PANU == nil {
		panic("workload: client needs a PANU host")
	}
	if napHost == nil || napHost.NAP == nil {
		panic("workload: client needs the NAP host")
	}
	if testLog == nil {
		panic("workload: nil test log")
	}
	c := &Client{
		cfg:      cfg,
		world:    world,
		host:     host,
		napHost:  napHost,
		testLog:  testLog,
		cascade:  recovery.NewCascade(host, world.RNG("recovery."+host.Node)),
		rng:      world.RNG("workload." + host.Node),
		counters: NewCounters(),
	}
	for i := range c.lastPhaseFail {
		c.lastPhaseFail[i] = -1
	}
	c.fnCycleStart = c.cycleStart
	c.fnSearchPhase = c.searchPhase
	c.fnSDPPhase = c.sdpPhase
	c.fnConnectPhase = c.connectPhase
	c.fnBindPhase = c.bindPhase
	c.fnBindDo = c.bindDo
	c.fnTransferPhase = c.transferPhase
	c.fnTransferLoop = c.transferLoop
	c.fnDisconnectPhase = c.disconnectPhase
	return c
}

// Counters exposes the accumulated statistics.
func (c *Client) Counters() *Counters { return c.counters }

// Node reports the client's host name.
func (c *Client) Node() string { return c.host.Node }

// Start schedules the first cycle after a small per-node phase offset so the
// six PANUs do not start in lockstep.
func (c *Client) Start() {
	if c.running {
		panic("workload: client already started")
	}
	c.running = true
	offset := sim.Time(c.rng.Int64N(int64(10 * sim.Second)))
	c.world.ScheduleAfter(offset, c.fnCycleStart)
}

// Stop halts the client after the current phase.
func (c *Client) Stop() { c.stopped = true }

// at schedules the next phase after d.
func (c *Client) at(d sim.Time, fn func()) {
	if d < 0 {
		d = 0
	}
	c.world.ScheduleAfter(d, fn)
}

// samplePlan draws the cycle's random variables.
func (c *Client) samplePlan() cyclePlan {
	var p cyclePlan
	p.scan = stats.Bernoulli(c.rng, c.cfg.FlagProb)
	p.sdp = stats.Bernoulli(c.rng, c.cfg.FlagProb)
	switch c.cfg.Kind {
	case core.WLRandom:
		// B: binomial over the six ACL data packet types.
		idx := stats.Binomial{N: 5, P: 0.5}.SampleInt(c.rng)
		p.pkt = core.PacketTypes()[idx]
		n := c.cfg.RandomN.SampleInt(c.rng)
		p.sendN = n / 2
		p.recvN = n - p.sendN
		p.sendSize = c.cfg.RandomLen.SampleInt(c.rng)
		p.recvSize = c.cfg.RandomLen.SampleInt(c.rng)
	case core.WLRealistic:
		// The packet type choice is left to the BT stack, which picks the
		// highest-rate type for bulk data.
		p.pkt = core.PTDH5
		p.app = traffic.RandomApp(c.rng)
		plan := traffic.Sample(p.app, c.rng, c.cfg.VolumeScale)
		p.sendN, p.recvN = plan.Packets()
		p.sendSize, p.recvSize = plan.SendPDU, plan.RecvPDU
		p.paced = plan.Paced
	case core.WLFixed:
		p.pkt = core.PTDH5
		p.sendN = c.cfg.FixedN / 2
		p.recvN = c.cfg.FixedN - p.sendN
		p.sendSize, p.recvSize = c.cfg.FixedLen, c.cfg.FixedLen
	default:
		panic(fmt.Sprintf("workload: unknown kind %v", c.cfg.Kind))
	}
	return p
}

// report builds and files a user failure report, runs the scenario's
// recovery (sampling the persistence depth), and returns the outcome.
func (c *Client) report(f core.UserFailure) recovery.Outcome {
	var out recovery.Outcome
	if f != core.UFDataMismatch {
		if depth, ok := recovery.SampleDepth(f, c.rng); ok {
			out = c.cascade.RunWithDepth(c.cfg.Scenario, depth)
		}
	}
	c.file(f, out)
	return out
}

// reportWithDepth files a report for a failure whose persistence depth was
// already sampled (by a masking decision that declined to mask it).
func (c *Client) reportWithDepth(f core.UserFailure, depth core.RecoveryAction) recovery.Outcome {
	out := c.cascade.RunWithDepth(c.cfg.Scenario, depth)
	c.file(f, out)
	return out
}

// file appends the report and updates failure bookkeeping.
func (c *Client) file(f core.UserFailure, out recovery.Outcome) {
	rep := core.UserReport{
		At:         c.world.Now(),
		Testbed:    c.cfg.Testbed,
		Node:       c.host.Node,
		Failure:    f,
		Workload:   c.cfg.Kind,
		App:        c.plan.app,
		Packet:     c.plan.pkt,
		CycleIdx:   c.cycleIdx,
		SDPFlag:    c.freshSDP,
		ScanFlag:   c.plan.scan,
		DistanceM:  c.host.DistanceM,
		IdleBefore: c.idleBefore,
	}
	if c.pipe != nil {
		rep.SentPkts = c.pipe.Sent()
	}
	if c.conn != nil {
		rep.ConnID = c.conn.ID
	}
	if f != core.UFDataMismatch {
		rep.Recovered = out.Recovered
		rep.Recovery = out.Action
		rep.TTR = out.TTR
	}
	rep.Phase, rep.Verdict = c.classify(f)
	c.testLog.Append(rep)
	c.counters.Failures[f]++
	c.cycleFailed = true
	c.lastFailureAt = c.world.Now()
}

// RecurrenceWindow is the windowed-recurrence horizon of the transience
// verdict: a repeat failure of the same protocol phase on the same node
// within this window is judged a dynamic-availability episode (the node is
// oscillating in and out of service) rather than an isolated transient.
const RecurrenceWindow = 10 * sim.Minute

// classify assigns the taxonomy tags at collection time: the protocol phase
// from the failure type, and the transience verdict from the windowed
// recurrence rule. Masked occurrences update the recurrence state too —
// masking hides the failure from the user, but the phase did fail. Tagging
// here, where the record is born, is what makes the classification
// plane-independent: retained, streaming and distributed collection all see
// records that already carry identical tags.
func (c *Client) classify(f core.UserFailure) (core.FailurePhase, core.TransienceVerdict) {
	phase := f.Phase()
	verdict := core.VerdictTransient
	now := c.world.Now()
	if last := c.lastPhaseFail[phase]; last >= 0 && now-last <= RecurrenceWindow {
		verdict = core.VerdictDynamicAvailability
	}
	c.lastPhaseFail[phase] = now
	return phase, verdict
}

// transientClass reports whether the RetryTransient masking applies to f.
func transientClass(f core.UserFailure) bool {
	switch f {
	case core.UFConnectFailed, core.UFSDPSearchFailed,
		core.UFPANConnectFailed, core.UFPacketLoss:
		return true
	default:
		return false
	}
}

// failTransient handles a failure that the RetryTransient masking may
// suppress: when masked, the phase retries (via retry, after the masking
// wait); otherwise the failure is reported with its sampled depth and the
// cycle restarts.
func (c *Client) failTransient(f core.UserFailure, retry func()) {
	if c.cfg.Masking.RetryTransient && transientClass(f) {
		depth, maskedOK := recovery.TryMask(f, c.rng)
		if maskedOK {
			c.masked(f)
			c.at(recovery.MaskRetryWait, retry)
			return
		}
		if depth != core.RANone {
			c.failAndRestart(c.reportWithDepth(f, depth))
			return
		}
	}
	c.failAndRestart(c.report(f))
}

// masked records a masked event: the failure the strategy suppressed.
func (c *Client) masked(f core.UserFailure) {
	c.counters.Masked[f]++
	// Masked reports are filed for analysis but flagged so that failure
	// streams exclude them.
	rep := core.UserReport{
		At:        c.world.Now(),
		Testbed:   c.cfg.Testbed,
		Node:      c.host.Node,
		Failure:   f,
		Workload:  c.cfg.Kind,
		App:       c.plan.app,
		Packet:    c.plan.pkt,
		CycleIdx:  c.cycleIdx,
		SDPFlag:   c.freshSDP,
		ScanFlag:  c.plan.scan,
		DistanceM: c.host.DistanceM,
		Masked:    true,
		Recovered: true,
	}
	rep.Phase, rep.Verdict = c.classify(f)
	c.testLog.Append(rep)
}

// failAndRestart handles a reported failure: quiet teardown plus scheduling
// the next cycle after the recovery time and a fresh off period.
func (c *Client) failAndRestart(out recovery.Outcome) {
	c.teardown()
	off := c.offTime()
	c.at(out.TTR+off, c.fnCycleStart)
}

// teardown quietly drops connection state.
func (c *Client) teardown() {
	if c.conn != nil {
		c.host.PANU.Abort(c.conn, c.napHost.NAP)
	}
	c.conn = nil
	c.pipe = nil
	c.hd = hci.InvalidHandle
	c.cyclesLeft = 0
	c.cycleIdx = 0
}

// offTime samples the Pareto passive off time.
func (c *Client) offTime() sim.Time {
	return sim.Seconds(c.cfg.OffTime.Sample(c.rng))
}

// cycleStart begins a BlueTest cycle: on a live (reused) connection it goes
// straight to the transfer; otherwise it walks the full utilisation chain.
func (c *Client) cycleStart() {
	if c.stopped {
		return
	}
	c.counters.Cycles++
	c.cycleFailed = false
	c.plan = c.samplePlan()

	if c.conn != nil && c.cyclesLeft > 0 {
		// Consecutive cycle over the same connection (realistic WL).
		c.cycleIdx++
		c.reusedIdle = true
		c.at(0, c.fnTransferPhase)
		return
	}
	c.reusedIdle = false
	c.cycleIdx = 1

	var dur sim.Time
	if c.plan.scan {
		res := c.host.HCI.Inquiry()
		dur += res.Dur
		if res.Err != nil {
			out := c.report(core.UFInquiryScanFailed)
			c.failAndRestart(out)
			return
		}
	}
	c.at(dur, c.fnSearchPhase)
}

// searchPhase establishes the baseband link; the SDP search itself runs in
// a follow-up event so that virtual time has actually advanced past the
// paging window (a real application waits for the connection-complete event
// before issuing L2CAP traffic).
func (c *Client) searchPhase() {
	if c.stopped {
		return
	}
	hd, res := c.host.HCI.CreateConnection(c.napHost.Node)
	if res.Err != nil {
		// The baseband link itself failed: the user sees a connect failure.
		c.failTransient(core.UFConnectFailed, c.fnSearchPhase)
		return
	}
	c.hd = hd
	c.at(res.Dur, c.fnSDPPhase)
}

// sdpPhase runs the SDP search when the SDP flag (or the always-search
// masking strategy) calls for it.
func (c *Client) sdpPhase() {
	if c.stopped {
		return
	}
	var dur sim.Time
	doSearch := c.plan.sdp
	maskForced := false
	if !doSearch && c.cfg.Masking.SDPBeforeConnect {
		// Masking: always search before connecting. Whether the skipped
		// search would have bitten is sampled against the stale-cache
		// failure probability on a dedicated stream, so the masked count
		// matches what the unmasked run would have seen.
		doSearch = true
		maskForced = true
	}
	c.freshSDP = false
	if doSearch {
		search := func() error {
			hits, sres := c.host.SDPClient.Search(c.hd, c.napHost.SDPServer, sdp.UUIDNAP)
			dur += sres.Dur
			if sres.Err != nil {
				return sres.Err
			}
			if len(hits) == 0 {
				return errNAPNotFound
			}
			return nil
		}
		err := search()
		if err != nil && errors.Is(err, errNAPNotFound) && c.cfg.Masking.RetryNAPNotFound {
			var waited sim.Time
			var on int
			err, waited, on = recovery.Retry(recovery.MaskRetries, recovery.MaskRetryWait, search)
			dur += waited
			if err == nil && on > 1 {
				c.masked(core.UFNAPNotFound)
			}
		}
		if err != nil {
			if errors.Is(err, errNAPNotFound) {
				c.failAndRestart(c.report(core.UFNAPNotFound))
			} else {
				c.failTransient(core.UFSDPSearchFailed, c.fnSDPPhase)
			}
			return
		}
		c.freshSDP = true
		if maskForced {
			// Would the cache have failed us? Count the counterfactual.
			p := c.host.Config().PAN.StaleCacheFailProb
			if stats.Bernoulli(c.world.RNG("mask.sdp."+c.host.Node), p) {
				c.masked(core.UFPANConnectFailed)
			}
		}
	}
	c.at(dur, c.fnConnectPhase)
}

// errNAPNotFound distinguishes the empty search result internally.
var errNAPNotFound = errors.New("workload: NAP not found")

// connectPhase runs the PAN connection and the role switch.
func (c *Client) connectPhase() {
	if c.stopped {
		return
	}
	conn, res := c.host.PANU.Connect(c.hd, c.napHost.NAP, c.freshSDP)
	if res.Err != nil {
		if res.Stage == pan.StageL2CAP {
			c.failTransient(core.UFConnectFailed, c.fnConnectPhase)
		} else {
			c.failTransient(core.UFPANConnectFailed, c.fnConnectPhase)
		}
		return
	}
	c.conn = conn
	c.connectedAt = c.world.Now() + res.Dur
	c.counters.Connections++
	c.host.Hotplug.OnCreated(conn.Iface)
	dur := res.Dur

	// Master/slave switch, with the masking retry when enabled.
	doSwitch := func() error {
		sres := c.host.PANU.SwitchRole(c.conn, c.napHost.NAP)
		dur += sres.Dur
		return sres.Err
	}
	err := doSwitch()
	if err != nil && c.cfg.Masking.RetrySwitchRole {
		wasRequestLeg := pan.RequestLegFailed(err)
		var waited sim.Time
		var on int
		err, waited, on = recovery.Retry(recovery.MaskRetries, recovery.MaskRetryWait, doSwitch)
		dur += waited
		if err == nil && on > 1 {
			if wasRequestLeg {
				c.masked(core.UFSwitchRoleRequestFailed)
			} else {
				c.masked(core.UFSwitchRoleCommandFailed)
			}
		}
	}
	if err != nil {
		var out recovery.Outcome
		if pan.RequestLegFailed(err) {
			out = c.report(core.UFSwitchRoleRequestFailed)
		} else {
			out = c.report(core.UFSwitchRoleCommandFailed)
		}
		c.failAndRestart(out)
		return
	}

	c.pipe = c.host.OpenPipe(c.conn)
	if c.cfg.Kind == core.WLRealistic {
		c.cyclesLeft = 1 + c.rng.IntN(c.cfg.MaxCycles)
	} else {
		c.cyclesLeft = 1
	}
	c.at(dur+c.cfg.BindDelay, c.fnBindPhase)
}

// bindPhase binds the IP socket, racing T_C and T_H unless masked.
func (c *Client) bindPhase() {
	if c.stopped {
		return
	}
	if c.cfg.Masking.BindWait {
		// Peek: would the natural bind have failed right now?
		wouldFail := c.conn == nil || c.conn.Iface == nil ||
			c.world.Now() < c.connectedAt+c.host.Config().TCWindow ||
			!c.conn.Iface.Configured
		if wouldFail {
			c.masked(core.UFBindFailed)
			wait := c.host.WaitForBind(c.conn, c.connectedAt)
			c.at(wait, c.fnBindDo)
			return
		}
	}
	c.bindDo()
}

// bindDo performs the actual bind.
func (c *Client) bindDo() {
	if c.stopped {
		return
	}
	if _, err := c.host.Bind(c.conn, c.connectedAt); err != nil {
		out := c.report(core.UFBindFailed)
		c.failAndRestart(out)
		return
	}
	c.at(sim.Millisecond, c.fnTransferPhase)
}

// transferPhase begins the cycle's data transfer.
func (c *Client) transferPhase() {
	c.sendLeft, c.recvLeft = c.plan.sendN, c.plan.recvN
	c.transferLoop()
}

// transferLoop moves the remaining packets through the pipe. It is
// re-entrant: a masked packet loss pauses here and resumes after the
// masking retry wait with the remaining counts intact.
func (c *Client) transferLoop() {
	if c.stopped {
		return
	}
	if c.pipe == nil || c.conn == nil || !c.conn.Open {
		// The connection evaporated between cycles (e.g. a reset from a
		// prior failure): rebuild on the next cycle.
		c.teardown()
		c.at(c.offTime(), c.fnCycleStart)
		return
	}
	var dur sim.Time
	for c.sendLeft+c.recvLeft > 0 {
		size := c.plan.sendSize
		if c.sendLeft > 0 {
			c.sendLeft--
		} else {
			size = c.plan.recvSize
			c.recvLeft--
		}
		c.counters.PacketsByType[c.plan.pkt]++
		c.counters.BytesMoved += int64(size)
		outcome, elapsed := c.pipe.SendPacket(c.plan.pkt, size)
		dur += elapsed
		switch outcome {
		case stack.PacketLost:
			c.counters.LossesByType[c.plan.pkt]++
			if c.cfg.Masking.RetryTransient {
				if depth, maskedOK := recovery.TryMask(core.UFPacketLoss, c.rng); maskedOK {
					// Application-level retransmission masks the loss: pause,
					// let the fade pass (pipe slots advance with the wait),
					// resume the remaining transfer.
					c.masked(core.UFPacketLoss)
					c.at(dur+recovery.MaskRetryWait, c.fnTransferLoop)
					return
				} else if depth != core.RANone {
					c.recordIdleOutcome(true)
					c.failAndRestart(c.reportWithDepth(core.UFPacketLoss, depth))
					return
				}
			}
			c.recordIdleOutcome(true)
			c.failAndRestart(c.report(core.UFPacketLoss))
			return
		case stack.PacketCorrupted:
			// Reported, not recoverable, transfer continues.
			c.report(core.UFDataMismatch)
		}
	}
	c.recordIdleOutcome(false)
	c.at(dur, c.fnDisconnectPhase)
}

// recordIdleOutcome feeds the idle-time analysis for reused connections.
func (c *Client) recordIdleOutcome(failed bool) {
	if !c.reusedIdle {
		return
	}
	secs := c.idleBefore.Seconds()
	if failed {
		c.counters.IdleBeforeFailed.Add(secs)
	} else {
		c.counters.IdleBeforeClean.Add(secs)
	}
}

// disconnectPhase closes the cycle: either keep the connection for the next
// consecutive cycle or disconnect and go passive.
func (c *Client) disconnectPhase() {
	if c.stopped {
		return
	}
	c.cyclesLeft--
	off := c.offTime()
	c.idleBefore = off
	if c.cyclesLeft > 0 && c.conn != nil && c.conn.Open {
		// Stay connected; idle T_W, then the next consecutive cycle.
		c.at(off, c.fnCycleStart)
		return
	}
	if c.conn != nil {
		c.host.PANU.Disconnect(c.conn, c.napHost.NAP)
	}
	c.conn = nil
	c.pipe = nil
	c.hd = hci.InvalidHandle
	c.cycleIdx = 0
	c.at(off, c.fnCycleStart)
}
