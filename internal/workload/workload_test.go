package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/logging"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/stack"
)

// pair wires one PANU and the NAP into a world with logs.
type pair struct {
	world   *sim.World
	nap     *stack.Host
	panu    *stack.Host
	testLog *logging.TestLog
	sysLog  *logging.SystemLog
	connID  uint64
}

func newPair(t *testing.T, seed uint64, panuName string, mutate func(*stack.Config)) *pair {
	t.Helper()
	p := &pair{world: sim.NewWorld(seed)}
	p.testLog = logging.NewTestLog(panuName)
	p.sysLog = logging.NewSystemLog(panuName)
	clock := func() sim.Time { return p.world.Now() }

	napSpec, err := device.ByName("Giallo")
	if err != nil {
		t.Fatal(err)
	}
	napCfg := napSpec.HostConfig()
	if mutate != nil {
		mutate(&napCfg) // the NAP's daemons must be quiet too
	}
	napSys := logging.NewSystemLog("Giallo")
	p.nap = stack.NewHost(napCfg, p.world, "Giallo", napSpec.OS, 0,
		false, true, napSpec.BuildTransport(p.world), &p.connID,
		napSys.Sink("test", clock, nil))

	spec, err := device.ByName(panuName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.HostConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	p.panu = stack.NewHost(cfg, p.world, panuName, spec.OS, spec.DistanceM,
		spec.IsPDA, false, spec.BuildTransport(p.world), &p.connID,
		p.sysLog.Sink("test", clock, nil))
	return p
}

func quiet(cfg *stack.Config) {
	cfg.SDP.RefuseProb, cfg.SDP.TimeoutProb, cfg.SDP.MissProb = 0, 0, 0
	cfg.HCI.TimeoutProbIdle, cfg.HCI.TimeoutProbBusy, cfg.HCI.InquiryFailProb = 0, 0, 0
	cfg.L2CAP.UnexpectedFrameProb, cfg.L2CAP.DataFaultPerPacket = 0, 0
	cfg.BNEP.ModuleMissingProb, cfg.BNEP.OccupiedProb, cfg.BNEP.AddFailedProb = 0, 0, 0
	cfg.PAN.StaleCacheFailProb, cfg.PAN.FreshFailProb = 0, 0
	cfg.PAN.SwitchReqExtraTimeout = 0
	cfg.PAN.SwitchCmdL2CAPProb, cfg.PAN.SwitchCmdBNEPProb, cfg.PAN.SwitchCmdHCIProb = 0, 0, 0
	cfg.Hotplug.DefectExtendProb, cfg.Hotplug.DefectLossProb = 0, 0
	cfg.Radio.BERGood, cfg.Radio.BERBad = 0, 0
	cfg.Radio.InterferencePerHour = 0
	cfg.LatentDefectProb = 0
}

func TestConfigValidation(t *testing.T) {
	good := DefaultRandom("random", recovery.ScenarioSIRAs)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultRealistic("realistic", recovery.ScenarioSIRAs).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultFixed("fixed", recovery.ScenarioSIRAs).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Testbed = ""
	if bad.Validate() == nil {
		t.Error("empty testbed accepted")
	}
	bad = DefaultRealistic("x", recovery.ScenarioSIRAs)
	bad.MaxCycles = 21
	if bad.Validate() == nil {
		t.Error("21 cycles accepted")
	}
}

func TestMaskedScenarioEnablesMasking(t *testing.T) {
	cfg := DefaultRandom("random", recovery.ScenarioSIRAsMasking)
	if !cfg.Masking.SDPBeforeConnect {
		t.Error("masked scenario should enable masking strategies")
	}
	cfg = DefaultRandom("random", recovery.ScenarioSIRAs)
	if cfg.Masking.SDPBeforeConnect {
		t.Error("unmasked scenario should not mask")
	}
}

func TestClientRunsCleanCycles(t *testing.T) {
	p := newPair(t, 101, "Verde", quiet)
	client := NewClient(DefaultRandom("random", recovery.ScenarioSIRAs),
		p.world, p.panu, p.nap, p.testLog)
	client.Start()
	p.world.RunUntil(2 * sim.Hour)

	c := client.Counters()
	if c.Cycles < 30 {
		t.Fatalf("only %d cycles in 2 virtual hours", c.Cycles)
	}
	if c.Connections < 20 {
		t.Errorf("only %d connections", c.Connections)
	}
	if c.BytesMoved == 0 {
		t.Error("no data moved")
	}
	if got := c.TotalFailures(); got != 0 {
		t.Errorf("%d failures on a fault-free testbed: %v", got, c.Failures)
	}
	if p.testLog.Len() != 0 {
		t.Errorf("%d reports on a fault-free testbed", p.testLog.Len())
	}
}

func TestClientReportsPacketLoss(t *testing.T) {
	p := newPair(t, 102, "Verde", func(cfg *stack.Config) {
		quiet(cfg)
		cfg.LatentDefectProb = 1
		cfg.LatentMeanPackets = 3
	})
	client := NewClient(DefaultRandom("random", recovery.ScenarioSIRAs),
		p.world, p.panu, p.nap, p.testLog)
	client.Start()
	p.world.RunUntil(2 * sim.Hour)

	c := client.Counters()
	if c.Failures[core.UFPacketLoss] == 0 {
		t.Fatal("latent defects should surface as packet losses")
	}
	var sawRecovered bool
	for _, r := range p.testLog.Snapshot() {
		if r.Failure != core.UFPacketLoss {
			continue
		}
		if r.Node != "Verde" || r.Workload != core.WLRandom || r.Testbed != "random" {
			t.Fatalf("bad report context: %+v", r)
		}
		if !r.Packet.Valid() {
			t.Error("report missing packet type")
		}
		if r.Recovered {
			sawRecovered = true
			if !r.Recovery.Valid() {
				t.Error("recovered report without an action")
			}
			if r.TTR <= 0 {
				t.Error("recovered report without TTR")
			}
		}
	}
	if !sawRecovered {
		t.Error("no packet loss was recovered by the cascade")
	}
}

func TestClientClassifiesConnectStages(t *testing.T) {
	p := newPair(t, 103, "Miseno", func(cfg *stack.Config) {
		quiet(cfg)
		cfg.PAN.FreshFailProb = 1 // every PAN setup fails
	})
	client := NewClient(DefaultRandom("random", recovery.ScenarioSIRAs),
		p.world, p.panu, p.nap, p.testLog)
	client.Start()
	p.world.RunUntil(time30m())

	c := client.Counters()
	if c.Failures[core.UFPANConnectFailed] == 0 {
		t.Fatalf("no PAN connect failures: %v", c.Failures)
	}
	if c.Failures[core.UFConnectFailed] != 0 {
		t.Errorf("PAN-stage failures misclassified as L2CAP stage: %v", c.Failures)
	}
}

func time30m() sim.Time { return 30 * sim.Minute }

func TestSwitchRoleMaskingRetries(t *testing.T) {
	// Without masking the switch-command failures surface; with masking the
	// transient clears on retry (the fault is drawn per call, so a retry
	// usually succeeds at p=0.5).
	run := func(scenario recovery.Scenario) (failures, masked int) {
		p := newPair(t, 104, "Ipaq", func(cfg *stack.Config) {
			quiet(cfg)
			cfg.PAN.SwitchCmdBNEPProb = 0.5
		})
		cfg := DefaultRandom("random", scenario)
		client := NewClient(cfg, p.world, p.panu, p.nap, p.testLog)
		client.Start()
		p.world.RunUntil(3 * sim.Hour)
		c := client.Counters()
		return c.Failures[core.UFSwitchRoleCommandFailed], c.Masked[core.UFSwitchRoleCommandFailed]
	}
	unmaskedFailures, _ := run(recovery.ScenarioSIRAs)
	maskedFailures, maskedCount := run(recovery.ScenarioSIRAsMasking)
	if unmaskedFailures == 0 {
		t.Fatal("no switch failures without masking")
	}
	if maskedCount == 0 {
		t.Fatal("masking never fired")
	}
	if maskedFailures >= unmaskedFailures {
		t.Errorf("masking did not reduce failures: %d -> %d", unmaskedFailures, maskedFailures)
	}
}

func TestBindMaskingEliminatesBindFailures(t *testing.T) {
	mutate := func(cfg *stack.Config) {
		quiet(cfg)
		cfg.Hotplug.DefectExtendProb = 1 // every hotplug event late
	}
	p := newPair(t, 105, "Azzurro", mutate)
	client := NewClient(DefaultRandom("random", recovery.ScenarioSIRAs),
		p.world, p.panu, p.nap, p.testLog)
	client.Start()
	p.world.RunUntil(sim.Hour)
	if client.Counters().Failures[core.UFBindFailed] == 0 {
		t.Fatal("late hotplug should produce bind failures unmasked")
	}

	p2 := newPair(t, 105, "Azzurro", mutate)
	client2 := NewClient(DefaultRandom("random", recovery.ScenarioSIRAsMasking),
		p2.world, p2.panu, p2.nap, p2.testLog)
	client2.Start()
	p2.world.RunUntil(sim.Hour)
	c2 := client2.Counters()
	if c2.Failures[core.UFBindFailed] != 0 {
		t.Errorf("masking left %d bind failures", c2.Failures[core.UFBindFailed])
	}
	if c2.Masked[core.UFBindFailed] == 0 {
		t.Error("masked bind events not counted")
	}
}

func TestSDPMaskingAvoidsStaleCache(t *testing.T) {
	mutate := func(cfg *stack.Config) {
		quiet(cfg)
		cfg.PAN.StaleCacheFailProb = 1 // cached connects always fail
	}
	p := newPair(t, 106, "Verde", mutate)
	client := NewClient(DefaultRandom("random", recovery.ScenarioSIRAs),
		p.world, p.panu, p.nap, p.testLog)
	client.Start()
	p.world.RunUntil(sim.Hour)
	if client.Counters().Failures[core.UFPANConnectFailed] == 0 {
		t.Fatal("stale cache should produce PAN connect failures unmasked")
	}

	p2 := newPair(t, 106, "Verde", mutate)
	client2 := NewClient(DefaultRandom("random", recovery.ScenarioSIRAsMasking),
		p2.world, p2.panu, p2.nap, p2.testLog)
	client2.Start()
	p2.world.RunUntil(sim.Hour)
	c2 := client2.Counters()
	if c2.Failures[core.UFPANConnectFailed] != 0 {
		t.Errorf("masking left %d PAN connect failures", c2.Failures[core.UFPANConnectFailed])
	}
	if c2.Masked[core.UFPANConnectFailed] == 0 {
		t.Error("masked stale-cache events not counted")
	}
}

func TestRealisticWorkloadReusesConnections(t *testing.T) {
	p := newPair(t, 107, "Verde", quiet)
	cfg := DefaultRealistic("realistic", recovery.ScenarioSIRAs)
	client := NewClient(cfg, p.world, p.panu, p.nap, p.testLog)
	client.Start()
	p.world.RunUntil(4 * sim.Hour)

	c := client.Counters()
	if c.Cycles <= c.Connections {
		t.Errorf("cycles (%d) should exceed connections (%d) when reusing", c.Cycles, c.Connections)
	}
	if c.IdleBeforeClean.N() == 0 {
		t.Error("no idle-time observations for reused connections")
	}
}

func TestFixedWorkloadMovesFixedVolume(t *testing.T) {
	p := newPair(t, 108, "Verde", quiet)
	cfg := DefaultFixed("fixed", recovery.ScenarioSIRAs)
	client := NewClient(cfg, p.world, p.panu, p.nap, p.testLog)
	client.Start()
	// One fixed cycle moves 10000*1691 B over DH5: run long enough for a
	// couple of cycles.
	p.world.RunUntil(2 * sim.Hour)
	c := client.Counters()
	if c.Cycles == 0 {
		t.Fatal("no cycles")
	}
	wantPerCycle := int64(10000) * 1691
	if c.BytesMoved < wantPerCycle {
		t.Errorf("moved %d bytes, want at least one full fixed cycle (%d)", c.BytesMoved, wantPerCycle)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, int, int64) {
		p := newPair(t, 109, "Verde", nil) // default faults on
		client := NewClient(DefaultRandom("random", recovery.ScenarioSIRAs),
			p.world, p.panu, p.nap, p.testLog)
		client.Start()
		p.world.RunUntil(2 * sim.Hour)
		c := client.Counters()
		return c.Cycles, c.TotalFailures(), c.BytesMoved
	}
	c1, f1, b1 := run()
	c2, f2, b2 := run()
	if c1 != c2 || f1 != f2 || b1 != b2 {
		t.Errorf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", c1, f1, b1, c2, f2, b2)
	}
}

func TestDefaultFaultsProduceFailures(t *testing.T) {
	p := newPair(t, 110, "Verde", nil)
	client := NewClient(DefaultRandom("random", recovery.ScenarioSIRAs),
		p.world, p.panu, p.nap, p.testLog)
	client.Start()
	p.world.RunUntil(12 * sim.Hour)
	c := client.Counters()
	if c.TotalFailures() == 0 {
		t.Error("12 virtual hours with calibrated faults should fail at least once")
	}
	if p.sysLog.Len() == 0 {
		t.Error("no system-level entries logged")
	}
}

func TestStopHaltsClient(t *testing.T) {
	p := newPair(t, 111, "Verde", quiet)
	client := NewClient(DefaultRandom("random", recovery.ScenarioSIRAs),
		p.world, p.panu, p.nap, p.testLog)
	client.Start()
	p.world.RunUntil(20 * sim.Minute)
	cycles := client.Counters().Cycles
	client.Stop()
	p.world.RunUntil(2 * sim.Hour)
	if got := client.Counters().Cycles; got > cycles+1 {
		t.Errorf("client kept cycling after Stop: %d -> %d", cycles, got)
	}
}
