package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// CountersSnapshot is the serializable state of a client's Counters. The
// distributed collection plane ships it in the agent's final frame (the §6
// idle-time scalars and Figure 3a need per-client counters, which never
// travel through the record stream), and sweep checkpoints persist it per
// seed so interrupted sweeps resume with their scalar columns intact.
type CountersSnapshot struct {
	Cycles      int   `json:"cycles"`
	Connections int   `json:"connections"`
	BytesMoved  int64 `json:"bytes_moved"`

	Failures map[core.UserFailure]int `json:"failures,omitempty"`
	Masked   map[core.UserFailure]int `json:"masked,omitempty"`

	PacketsByType []int64 `json:"packets_by_type"`
	LossesByType  []int64 `json:"losses_by_type"`

	IdleBeforeFailed stats.SummarySnapshot `json:"idle_before_failed"`
	IdleBeforeClean  stats.SummarySnapshot `json:"idle_before_clean"`
}

// Snapshot captures the counters' exact state.
func (c *Counters) Snapshot() *CountersSnapshot {
	snap := &CountersSnapshot{
		Cycles:           c.Cycles,
		Connections:      c.Connections,
		BytesMoved:       c.BytesMoved,
		Failures:         make(map[core.UserFailure]int, len(c.Failures)),
		Masked:           make(map[core.UserFailure]int, len(c.Masked)),
		PacketsByType:    append([]int64(nil), c.PacketsByType[:]...),
		LossesByType:     append([]int64(nil), c.LossesByType[:]...),
		IdleBeforeFailed: c.IdleBeforeFailed.Snapshot(),
		IdleBeforeClean:  c.IdleBeforeClean.Snapshot(),
	}
	for f, n := range c.Failures {
		snap.Failures[f] = n
	}
	for f, n := range c.Masked {
		snap.Masked[f] = n
	}
	return snap
}

// RestoreCounters rebuilds Counters from a snapshot.
func RestoreCounters(snap *CountersSnapshot) (*Counters, error) {
	if len(snap.PacketsByType) != core.NumPacketTypes || len(snap.LossesByType) != core.NumPacketTypes {
		return nil, fmt.Errorf("workload: counters snapshot has %d/%d packet-type cells, want %d",
			len(snap.PacketsByType), len(snap.LossesByType), core.NumPacketTypes)
	}
	c := NewCounters()
	c.Cycles, c.Connections, c.BytesMoved = snap.Cycles, snap.Connections, snap.BytesMoved
	for f, n := range snap.Failures {
		c.Failures[f] = n
	}
	for f, n := range snap.Masked {
		c.Masked[f] = n
	}
	copy(c.PacketsByType[:], snap.PacketsByType)
	copy(c.LossesByType[:], snap.LossesByType)
	c.IdleBeforeFailed = stats.RestoreSummary(snap.IdleBeforeFailed)
	c.IdleBeforeClean = stats.RestoreSummary(snap.IdleBeforeClean)
	return c, nil
}
