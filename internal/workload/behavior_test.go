package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/stack"
)

// TestFixedWorkloadReportsCarryConnectionAge checks the Figure 3b data path:
// packet-loss reports from the fixed workload must carry the number of
// packets sent before the loss, spread over the 10000-packet cycle.
func TestFixedWorkloadReportsCarryConnectionAge(t *testing.T) {
	p := newPair(t, 201, "Verde", func(cfg *stack.Config) {
		quiet(cfg)
		cfg.LatentDefectProb = 0.5
		cfg.LatentMeanPackets = 200
	})
	client := NewClient(DefaultFixed("fixed", recovery.ScenarioSIRAs),
		p.world, p.panu, p.nap, p.testLog)
	client.Start()
	p.world.RunUntil(6 * sim.Hour)

	losses := 0
	young := 0
	for _, r := range p.testLog.Snapshot() {
		if r.Failure != core.UFPacketLoss {
			continue
		}
		losses++
		if r.SentPkts < 0 || r.SentPkts > 10001 {
			t.Fatalf("SentPkts = %d outside the fixed cycle", r.SentPkts)
		}
		if r.SentPkts < 1000 {
			young++
		}
	}
	if losses == 0 {
		t.Fatal("no packet losses with a 50% latent defect rate")
	}
	if young*2 < losses {
		t.Errorf("only %d/%d losses struck young connections (infant mortality expected)", young, losses)
	}
}

// TestRealisticCycleIndexGrows verifies consecutive cycles on a reused
// connection increment the report's cycle index.
func TestRealisticCycleIndexGrows(t *testing.T) {
	p := newPair(t, 202, "Verde", func(cfg *stack.Config) {
		quiet(cfg)
		cfg.LatentDefectProb = 0.3
		cfg.LatentMeanPackets = 50
	})
	cfg := DefaultRealistic("realistic", recovery.ScenarioSIRAs)
	client := NewClient(cfg, p.world, p.panu, p.nap, p.testLog)
	client.Start()
	p.world.RunUntil(8 * sim.Hour)

	maxIdx := 0
	for _, r := range p.testLog.Snapshot() {
		if r.CycleIdx > maxIdx {
			maxIdx = r.CycleIdx
		}
		if r.CycleIdx > cfg.MaxCycles {
			t.Fatalf("cycle index %d above the 20-cycle bound", r.CycleIdx)
		}
	}
	if maxIdx < 2 {
		t.Errorf("no failure ever struck a reused connection (max idx %d)", maxIdx)
	}
}

// TestSDPFlagRecordedOnReports verifies the report's SDP flag matches
// whether the cycle actually searched (the Table 2 PAN-connect insight
// depends on it).
func TestSDPFlagRecordedOnReports(t *testing.T) {
	p := newPair(t, 203, "Verde", func(cfg *stack.Config) {
		quiet(cfg)
		cfg.PAN.StaleCacheFailProb = 1 // every cached connect fails
	})
	client := NewClient(DefaultRandom("random", recovery.ScenarioSIRAs),
		p.world, p.panu, p.nap, p.testLog)
	client.Start()
	p.world.RunUntil(2 * sim.Hour)

	for _, r := range p.testLog.Snapshot() {
		if r.Failure == core.UFPANConnectFailed && r.SDPFlag {
			t.Fatalf("stale-cache PAN failure reported with a fresh SDP search: %+v", r)
		}
	}
	if client.Counters().Failures[core.UFPANConnectFailed] == 0 {
		t.Fatal("no PAN connect failures to check")
	}
}

// TestMaskedTransferResumesAndCompletes forces maskable packet losses and
// checks the transfer loop resumes to completion instead of aborting.
func TestMaskedTransferResumesAndCompletes(t *testing.T) {
	p := newPair(t, 204, "Verde", func(cfg *stack.Config) {
		quiet(cfg)
		cfg.LatentDefectProb = 1
		cfg.LatentMeanPackets = 5
	})
	client := NewClient(DefaultRandom("random", recovery.ScenarioSIRAsMasking),
		p.world, p.panu, p.nap, p.testLog)
	client.Start()
	p.world.RunUntil(4 * sim.Hour)

	c := client.Counters()
	if c.Masked[core.UFPacketLoss] == 0 {
		t.Fatal("no masked packet losses")
	}
	// Masked losses must not stop the campaign's progress: cycles keep
	// completing and bytes keep moving.
	if c.Cycles < 50 || c.BytesMoved == 0 {
		t.Errorf("campaign stalled: %d cycles, %d bytes", c.Cycles, c.BytesMoved)
	}
	// The unmaskable (deep) share still surfaces as real failures
	// sometimes; both counters together should roughly match the latent
	// rate of one defect per connection.
	total := c.Masked[core.UFPacketLoss] + c.Failures[core.UFPacketLoss]
	if total < c.Connections/2 {
		t.Errorf("latent defects unaccounted: %d events for %d connections", total, c.Connections)
	}
}

// TestDataMismatchDoesNotTriggerRecovery checks the no-recovery rule for
// data mismatch: reports exist, carry no recovery action, and the transfer
// continues (cycles complete).
func TestDataMismatchDoesNotTriggerRecovery(t *testing.T) {
	p := newPair(t, 205, "Verde", func(cfg *stack.Config) {
		quiet(cfg)
		cfg.Radio.BERGood = 1e-4 // corruption attempts happen
		cfg.ARQ.CRCEscape = 0.2  // and often escape
	})
	client := NewClient(DefaultRandom("random", recovery.ScenarioSIRAs),
		p.world, p.panu, p.nap, p.testLog)
	client.Start()
	p.world.RunUntil(sim.Hour)

	mismatches := 0
	for _, r := range p.testLog.Snapshot() {
		if r.Failure != core.UFDataMismatch {
			continue
		}
		mismatches++
		if r.Recovered || r.Recovery != core.RANone || r.TTR != 0 {
			t.Fatalf("data mismatch with recovery fields set: %+v", r)
		}
	}
	if mismatches == 0 {
		t.Fatal("no data mismatches at 20% escape rate")
	}
}

// TestCountersTrackUsageByPacketType checks the Figure 3a counters: the
// random workload must exercise every packet type, with the binomial
// mid-types dominating usage.
func TestCountersTrackUsageByPacketType(t *testing.T) {
	p := newPair(t, 206, "Verde", quiet)
	client := NewClient(DefaultRandom("random", recovery.ScenarioSIRAs),
		p.world, p.panu, p.nap, p.testLog)
	client.Start()
	p.world.RunUntil(6 * sim.Hour)

	c := client.Counters()
	for _, pt := range core.PacketTypes() {
		if c.PacketsByType[pt] == 0 {
			t.Errorf("packet type %v never used", pt)
		}
	}
	// Binomial(5, 0.5): DM3/DH3 carry 10/32 of draws each; DM1/DH5 1/32.
	if c.PacketsByType[core.PTDM3] < c.PacketsByType[core.PTDM1] {
		t.Error("binomial draw should favour mid types")
	}
}

// TestIdleTimesFollowPareto sanity-checks the off-time distribution: the
// sampled idle times before clean cycles should have a mean near the
// Pareto(10, 1.5) mean of 30 s.
func TestIdleTimesFollowPareto(t *testing.T) {
	p := newPair(t, 207, "Verde", quiet)
	client := NewClient(DefaultRealistic("realistic", recovery.ScenarioSIRAs),
		p.world, p.panu, p.nap, p.testLog)
	client.Start()
	p.world.RunUntil(24 * sim.Hour)

	c := client.Counters()
	if c.IdleBeforeClean.N() < 100 {
		t.Skip("not enough reused-connection cycles")
	}
	mean := c.IdleBeforeClean.Mean()
	if mean < 15 || mean > 60 {
		t.Errorf("idle mean = %.1f s, want near the Pareto mean of 30 s", mean)
	}
	if c.IdleBeforeClean.Min() < 10 {
		t.Errorf("idle min = %.1f s below the Pareto scale", c.IdleBeforeClean.Min())
	}
}
