// Package workload implements BlueTest, the synthetic workload of the
// paper's collection infrastructure: clients on the PANUs and a server on
// the NAP, emulating Bluetooth PAN users around the clock.
//
// Each BlueTest cycle runs the paper's utilisation phases: an inquiry/scan
// (flag S), an SDP search for the NAP service (flag SDP), the PAN connection
// (BNEP over L2CAP) with the master/slave role switch, the socket bind, a
// data transfer of N packets of sizes L_S/L_R with baseband packet type B,
// the disconnection, and a Pareto-distributed passive off time T_W. The
// Random workload draws B binomially over the six ACL types and N and the
// sizes uniformly; the Realistic workload follows the traffic models of
// package traffic and runs 1–20 consecutive cycles per connection; the Fixed
// workload (N=10000, L_S=L_R=1691 B) is the special two-month experiment
// behind Figure 3b.
//
// The client is instrumented exactly as the paper describes: every API
// return state is checked, failures are classified into the user-level
// taxonomy, a failure report (with node status) lands in the Test Log, and
// the SIRA cascade (or the scenario's manual recovery) is triggered.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config parameterises one BlueTest client.
type Config struct {
	Kind     core.WorkloadKind
	Testbed  string
	Scenario recovery.Scenario
	Masking  recovery.Masking

	// FlagProb is the probability that the S (scan) and SDP flags are true
	// in a cycle; the paper draws both uniformly.
	FlagProb float64

	// RandomN bounds the random workload's packet count per cycle.
	RandomN stats.UniformInt
	// RandomLen bounds the random workload's L_S/L_R draw.
	RandomLen stats.UniformInt

	// OffTime is the passive off time T_W (Pareto, shape 1.5 per
	// Crovella–Bestavros).
	OffTime stats.Pareto

	// MaxCycles bounds consecutive cycles per connection (realistic WL).
	MaxCycles int

	// VolumeScale scales realistic transfer volumes (campaign speed knob).
	VolumeScale float64

	// FixedN / FixedLen parameterise the fixed workload.
	FixedN   int
	FixedLen int

	// BindDelay is the application's natural latency between PAN connect
	// and the socket bind — the window the T_C/T_H race lives in.
	BindDelay sim.Time
}

// DefaultRandom returns the Random workload configuration.
func DefaultRandom(testbed string, scenario recovery.Scenario) Config {
	cfg := Config{
		Kind:      core.WLRandom,
		Testbed:   testbed,
		Scenario:  scenario,
		FlagProb:  0.5,
		RandomN:   stats.UniformInt{Lo: 1, Hi: 120},
		RandomLen: stats.UniformInt{Lo: 64, Hi: 1691},
		OffTime:   stats.Pareto{Xm: 10, Alpha: 1.5},
		MaxCycles: 1,
		BindDelay: 300 * sim.Millisecond,
	}
	if scenario.Masked() {
		cfg.Masking = recovery.AllMasking()
	}
	return cfg
}

// DefaultRealistic returns the Realistic workload configuration.
func DefaultRealistic(testbed string, scenario recovery.Scenario) Config {
	cfg := DefaultRandom(testbed, scenario)
	cfg.Kind = core.WLRealistic
	cfg.MaxCycles = 20
	cfg.VolumeScale = 0.05
	return cfg
}

// DefaultFixed returns the Figure 3b fixed workload configuration.
func DefaultFixed(testbed string, scenario recovery.Scenario) Config {
	cfg := DefaultRandom(testbed, scenario)
	cfg.Kind = core.WLFixed
	cfg.FixedN = 10000
	cfg.FixedLen = 1691
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Kind == core.WLUnknown:
		return fmt.Errorf("workload: no kind")
	case c.Testbed == "":
		return fmt.Errorf("workload: no testbed name")
	case c.FlagProb < 0 || c.FlagProb > 1:
		return fmt.Errorf("workload: flag probability out of range")
	case c.Kind == core.WLRandom && (c.RandomN.Hi < c.RandomN.Lo || c.RandomN.Lo < 1):
		return fmt.Errorf("workload: bad random N bounds")
	case c.Kind == core.WLRealistic && (c.MaxCycles < 1 || c.MaxCycles > 20):
		return fmt.Errorf("workload: realistic cycles must be 1..20")
	case c.Kind == core.WLRealistic && c.VolumeScale <= 0:
		return fmt.Errorf("workload: non-positive volume scale")
	case c.Kind == core.WLFixed && (c.FixedN < 1 || c.FixedLen < 1):
		return fmt.Errorf("workload: bad fixed parameters")
	case c.OffTime.Xm <= 0 || c.OffTime.Alpha <= 0:
		return fmt.Errorf("workload: bad off-time Pareto")
	case c.BindDelay < 0:
		return fmt.Errorf("workload: negative bind delay")
	default:
		return nil
	}
}

// Counters accumulates per-client statistics during a campaign.
type Counters struct {
	Cycles      int
	Connections int
	BytesMoved  int64

	// Failures counts user-level failures by type (reported, unmasked).
	Failures map[core.UserFailure]int
	// Masked counts events suppressed by a masking strategy, by the failure
	// type they would have manifested as.
	Masked map[core.UserFailure]int

	// PacketsByType / LossesByType drive Figure 3a (usage and losses).
	// Dense arrays indexed by packet type: these are bumped once per
	// workload packet, where a map operation is measurable campaign cost.
	PacketsByType [core.NumPacketTypes]int64
	LossesByType  [core.NumPacketTypes]int64

	// IdleBeforeFailed / IdleBeforeClean accumulate the T_W preceding
	// failed and failure-free cycles on reused connections (the idle-time
	// analysis of §6).
	IdleBeforeFailed stats.Summary
	IdleBeforeClean  stats.Summary
}

// NewCounters allocates the maps.
func NewCounters() *Counters {
	return &Counters{
		Failures: make(map[core.UserFailure]int),
		Masked:   make(map[core.UserFailure]int),
	}
}

// TotalFailures sums reported failures.
func (c *Counters) TotalFailures() int {
	n := 0
	for _, v := range c.Failures {
		n += v
	}
	return n
}

// TotalMasked sums masked events.
func (c *Counters) TotalMasked() int {
	n := 0
	for _, v := range c.Masked {
		n += v
	}
	return n
}
