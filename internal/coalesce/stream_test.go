package coalesce

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// genStream builds a deterministic merged event stream for one PANU: bursts
// of mixed user failures and system entries (own node and NAP) separated by
// gaps both below and above the coalescence window, including exact-tie
// timestamps. The generator is a hand-rolled LCG so the fixture is identical
// on every platform.
func genStream(n int) []Event {
	const node, nap = "Verde", "Giallo"
	state := uint64(0x9E3779B97F4A7C15)
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	var out []Event
	at := sim.Time(0)
	for len(out) < n {
		// Advance by 0..600 s; zero keeps ties in the fixture, >330 s splits
		// tuples, >30 s splits evidence radii.
		at += sim.Time(next(601)) * sim.Second
		switch next(4) {
		case 0:
			f := core.UserFailures()[next(core.NumUserFailures)]
			out = append(out, Event{At: at, Node: node, IsUser: true,
				User: core.UserReport{At: at, Node: node, Failure: f}})
		case 1:
			src := core.SysSources()[next(core.NumSysSources)]
			out = append(out, Event{At: at, Node: nap,
				Sys: core.SystemEntry{At: at, Node: nap, Source: src}})
		default:
			src := core.SysSources()[next(core.NumSysSources)]
			out = append(out, Event{At: at, Node: node,
				Sys: core.SystemEntry{At: at, Node: node, Source: src}})
		}
	}
	return out
}

// feedStream pushes a merged event stream through a StreamRelator.
func feedStream(ev *Evidence, events []Event, napNode string, window, radius sim.Time) {
	sr := NewStreamRelator(ev, napNode, window, radius)
	for _, e := range events {
		if e.IsUser {
			sr.AddUser(e.At, e.User.Failure)
		} else {
			sr.AddSys(e.At, e.Node, e.Sys.Source)
		}
	}
	sr.Close()
}

// TestStreamRelatorMatchesRetained proves the streaming evidence extractor
// is exactly the retained pipeline (Tuples + RelateWithRadius) for
// radius <= window, across window/radius combinations including the paper's
// 330 s / 30 s and the radius == window edge.
func TestStreamRelatorMatchesRetained(t *testing.T) {
	events := genStream(4000)
	cases := []struct {
		name           string
		window, radius sim.Time
	}{
		{"paper", PaperWindow, RelateRadius},
		{"radius-equals-window", 120 * sim.Second, 120 * sim.Second},
		{"tight", 45 * sim.Second, 10 * sim.Second},
		{"wide", 900 * sim.Second, 300 * sim.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			retained := NewEvidence()
			RelateWithRadius(retained, Tuples(events, tc.window), "Giallo", tc.radius)
			streamed := NewEvidence()
			feedStream(streamed, events, "Giallo", tc.window, tc.radius)
			if !reflect.DeepEqual(retained, streamed) {
				t.Errorf("evidence diverges:\nretained %+v\nstreamed %+v", retained, streamed)
			}
		})
	}
}

// TestStreamRelatorEmptyAndSingleton covers the degenerate streams.
func TestStreamRelatorEmptyAndSingleton(t *testing.T) {
	ev := NewEvidence()
	sr := NewStreamRelator(ev, "Giallo", PaperWindow, RelateRadius)
	sr.Close()
	if ev.TotalFailures != 0 {
		t.Error("empty stream produced failures")
	}

	ev = NewEvidence()
	sr = NewStreamRelator(ev, "Giallo", PaperWindow, RelateRadius)
	sr.AddUser(sim.Second, core.UFPacketLoss)
	sr.Close()
	if ev.TotalFailures != 1 || ev.NoRelationship[core.UFPacketLoss] != 1 {
		t.Errorf("singleton failure: %+v", ev)
	}
}

// TestStreamRelatorRejectsBadConfig pins the precondition guards.
func TestStreamRelatorRejectsBadConfig(t *testing.T) {
	for _, tc := range []struct{ w, r sim.Time }{
		{0, RelateRadius},
		{PaperWindow, 0},
		{RelateRadius, PaperWindow}, // radius > window
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("want panic for window %v radius %v", tc.w, tc.r)
				}
			}()
			NewStreamRelator(NewEvidence(), "Giallo", tc.w, tc.r)
		}()
	}
}

// TestStreamRelatorPanicsOnTimeRegression pins the ordered-ingest invariant.
func TestStreamRelatorPanicsOnTimeRegression(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for time regression")
		}
	}()
	sr := NewStreamRelator(NewEvidence(), "Giallo", PaperWindow, RelateRadius)
	sr.AddUser(10*sim.Second, core.UFPacketLoss)
	sr.AddUser(5*sim.Second, core.UFPacketLoss)
}
