// Package coalesce implements the paper's "merge and coalesce" scheme for
// pinpointing error–failure relationships (Figure 2):
//
//  1. time-based merge of a node's Test Log with system logs (its own and
//     the NAP's), ordering entries by timestamp;
//  2. tupling (Buckley–Siewiorek): events closer than a coalescence window
//     W are clustered into tuples;
//  3. relationship evidence: a tuple containing both a user-level failure
//     and system-level entries is evidence that those errors relate to that
//     failure; counting evidences weights the relationship (Table 2).
//
// The window is chosen by sensitivity analysis: the tuple-count-versus-W
// curve has a knee (the paper finds it at 330 s); before the knee tuples
// fragment (truncations), after it unrelated errors merge (collapses).
//
// The pipeline exists in two forms: the retained functions above
// (Merge → Tuples → Relate/RelateWithRadius) over complete logs, and
// StreamRelator, which extracts the same Evidence incrementally from an
// event stream while holding only O(event rate × radius) state — the
// streaming plane's evidence path, valid whenever radius ≤ window (the
// paper's 30 s ≤ 330 s).
package coalesce

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Event is one merged log record: either a user-level failure report or a
// system-level error entry.
type Event struct {
	At     sim.Time
	Node   string
	IsUser bool
	User   core.UserReport  // valid when IsUser
	Sys    core.SystemEntry // valid when !IsUser
}

// Merge builds the time-ordered event sequence from a Test Log and any
// number of system logs. Masked reports are excluded: they never manifested
// to the user, so they carry no error-failure evidence.
func Merge(reports []core.UserReport, entries ...[]core.SystemEntry) []Event {
	var out []Event
	for _, r := range reports {
		if r.Masked {
			continue
		}
		out = append(out, Event{At: r.At, Node: r.Node, IsUser: true, User: r})
	}
	for _, es := range entries {
		for _, e := range es {
			out = append(out, Event{At: e.At, Node: e.Node, Sys: e})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Tuple is one coalesced cluster of events.
type Tuple struct {
	Start, End sim.Time
	Events     []Event
}

// UserFailures lists the user-level failure types present in the tuple.
func (t *Tuple) UserFailures() []core.UserFailure {
	var out []core.UserFailure
	for _, e := range t.Events {
		if e.IsUser {
			out = append(out, e.User.Failure)
		}
	}
	return out
}

// Tuples clusters a time-ordered event sequence: an event joins the current
// tuple when it falls within window of the previous event (gap criterion),
// otherwise it begins a new tuple. A non-positive window panics.
func Tuples(events []Event, window sim.Time) []Tuple {
	if window <= 0 {
		panic(fmt.Sprintf("coalesce: non-positive window %v", window))
	}
	var out []Tuple
	for _, ev := range events {
		n := len(out)
		if n > 0 && ev.At-out[n-1].End <= window {
			out[n-1].Events = append(out[n-1].Events, ev)
			out[n-1].End = ev.At
			continue
		}
		out = append(out, Tuple{Start: ev.At, End: ev.At, Events: []Event{ev}})
	}
	return out
}

// Sensitivity sweeps the coalescence window and returns the tuple-count
// curve (y = tuples as a percentage of events, as in the paper's Figure 2
// inset). Windows must be strictly increasing.
func Sensitivity(events []Event, windows []sim.Time) *stats.Curve {
	var curve stats.Curve
	if len(events) == 0 {
		return &curve
	}
	for _, w := range windows {
		tuples := Tuples(events, w)
		pct := float64(len(tuples)) / float64(len(events)) * 100
		curve.Append(w.Seconds(), pct)
	}
	return &curve
}

// DefaultWindows is the sweep used by the Figure 2 reproduction: 10 s to
// 1200 s.
func DefaultWindows() []sim.Time {
	var out []sim.Time
	for s := 10; s <= 1200; s += 10 {
		out = append(out, sim.Time(s)*sim.Second)
	}
	return out
}

// PaperWindow is the coalescence window the paper selects at the knee of
// the sensitivity curve.
const PaperWindow = 330 * sim.Second

// Locality distinguishes where the system-level evidence was logged.
type Locality int

// Localities of evidence.
const (
	Local Locality = iota // the failing PANU's own system log
	NAP                   // the NAP's system log (error propagation)
)

// String names the locality.
func (l Locality) String() string {
	if l == NAP {
		return "NAP"
	}
	return "local"
}

// EvidenceKey identifies one cell of the error-failure relationship.
type EvidenceKey struct {
	Failure  core.UserFailure
	Source   core.SysSource
	Locality Locality
}

// Evidence accumulates relationship counts (the input to Table 2).
type Evidence struct {
	// Counts maps relationship cells to evidence counts.
	Counts map[EvidenceKey]int
	// FailureTotals counts tuples containing each user failure.
	FailureTotals map[core.UserFailure]int
	// NoRelationship counts user failures whose tuple held no system entry
	// (e.g. inquiry/scan failures, for which the paper found none).
	NoRelationship map[core.UserFailure]int
	// TotalFailures is the number of (unmasked) user failure occurrences.
	TotalFailures int
}

// NewEvidence allocates the maps.
func NewEvidence() *Evidence {
	return &Evidence{
		Counts:         make(map[EvidenceKey]int),
		FailureTotals:  make(map[core.UserFailure]int),
		NoRelationship: make(map[core.UserFailure]int),
	}
}

// RelateRadius bounds which entries inside a tuple count as evidence for a
// particular failure: only those within this distance of the failure
// instant. Gap-chained tuples can span long busy periods; without the
// radius, one node's errors would count as evidence for every other node's
// temporally-nearby failures, diluting the relationship percentages far
// below the paper's (e.g. PAN connect <- SDP 96.5 %).
const RelateRadius = 30 * sim.Second

// Relate extracts error-failure evidence from tuples for one PANU: system
// entries logged by napNode count as NAP-side evidence, everything else as
// local. Within a tuple, an entry is evidence for a failure when it lies
// within RelateRadius of it. The results accumulate into ev (pass a fresh
// Evidence or reuse one across nodes to aggregate a whole testbed).
func Relate(ev *Evidence, tuples []Tuple, napNode string) {
	RelateWithRadius(ev, tuples, napNode, RelateRadius)
}

// RelateWithRadius is Relate with an explicit adjacency radius, for
// sensitivity/ablation studies of the evidence-extraction rule.
func RelateWithRadius(ev *Evidence, tuples []Tuple, napNode string, radius sim.Time) {
	for i := range tuples {
		t := &tuples[i]
		failures := t.UserFailures()
		if len(failures) == 0 {
			continue
		}
		for _, fe := range t.Events {
			if !fe.IsUser {
				continue
			}
			f := fe.User.Failure
			ev.FailureTotals[f]++
			ev.TotalFailures++
			found := false
			for _, e := range t.Events {
				if e.IsUser {
					continue
				}
				gap := e.At - fe.At
				if gap < 0 {
					gap = -gap
				}
				if gap > radius {
					continue
				}
				loc := Local
				if e.Node == napNode {
					loc = NAP
				}
				ev.Counts[EvidenceKey{Failure: f, Source: e.Sys.Source, Locality: loc}]++
				found = true
			}
			if !found {
				ev.NoRelationship[f]++
			}
		}
	}
}

// RowTotal sums the evidence for one failure across sources and localities.
func (ev *Evidence) RowTotal(f core.UserFailure) int {
	total := 0
	for key, n := range ev.Counts {
		if key.Failure == f {
			total += n
		}
	}
	return total
}
