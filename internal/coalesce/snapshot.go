package coalesce

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// Checkpoint snapshots for the streaming coalescence state: a collection
// sink that is killed mid-campaign must persist both the accumulated
// Evidence and every StreamRelator's in-flight window (the failures and
// entries still inside the matching radius), or the restored run would
// re-derive different Table 2 evidence than an uninterrupted one. Snapshots
// are exact: restoring and continuing the stream produces bit-identical
// Evidence (see the checkpoint round-trip tests in internal/analysis).

// EvidenceCell is one (failure, source, locality) relationship count of an
// EvidenceSnapshot.
type EvidenceCell struct {
	Failure  core.UserFailure `json:"failure"`
	Source   core.SysSource   `json:"source"`
	Locality Locality         `json:"locality"`
	Count    int              `json:"count"`
}

// EvidenceSnapshot is the serializable state of an Evidence accumulator.
// Cells are sorted by (failure, source, locality) so snapshot bytes are
// deterministic for a given state.
type EvidenceSnapshot struct {
	Cells          []EvidenceCell           `json:"cells,omitempty"`
	FailureTotals  map[core.UserFailure]int `json:"failure_totals,omitempty"`
	NoRelationship map[core.UserFailure]int `json:"no_relationship,omitempty"`
	TotalFailures  int                      `json:"total_failures"`
}

// Snapshot captures the evidence counts.
func (ev *Evidence) Snapshot() *EvidenceSnapshot {
	snap := &EvidenceSnapshot{
		FailureTotals:  make(map[core.UserFailure]int, len(ev.FailureTotals)),
		NoRelationship: make(map[core.UserFailure]int, len(ev.NoRelationship)),
		TotalFailures:  ev.TotalFailures,
	}
	for k, n := range ev.Counts {
		snap.Cells = append(snap.Cells, EvidenceCell{Failure: k.Failure, Source: k.Source,
			Locality: k.Locality, Count: n})
	}
	sort.Slice(snap.Cells, func(i, j int) bool {
		a, b := snap.Cells[i], snap.Cells[j]
		if a.Failure != b.Failure {
			return a.Failure < b.Failure
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.Locality < b.Locality
	})
	for f, n := range ev.FailureTotals {
		snap.FailureTotals[f] = n
	}
	for f, n := range ev.NoRelationship {
		snap.NoRelationship[f] = n
	}
	return snap
}

// RestoreInto loads the snapshot into ev, replacing its current contents.
// Restoring in place (rather than allocating a fresh Evidence) keeps every
// StreamRelator wired to the same accumulator across a restore.
func (snap *EvidenceSnapshot) RestoreInto(ev *Evidence) error {
	ev.Counts = make(map[EvidenceKey]int, len(snap.Cells))
	ev.FailureTotals = make(map[core.UserFailure]int, len(snap.FailureTotals))
	ev.NoRelationship = make(map[core.UserFailure]int, len(snap.NoRelationship))
	ev.TotalFailures = snap.TotalFailures
	for _, c := range snap.Cells {
		key := EvidenceKey{Failure: c.Failure, Source: c.Source, Locality: c.Locality}
		if _, dup := ev.Counts[key]; dup {
			return fmt.Errorf("coalesce: duplicate evidence cell %+v in snapshot", key)
		}
		ev.Counts[key] = c.Count
	}
	for f, n := range snap.FailureTotals {
		ev.FailureTotals[f] = n
	}
	for f, n := range snap.NoRelationship {
		ev.NoRelationship[f] = n
	}
	return nil
}

// PendingFailureSnapshot is one in-radius failure of a RelatorSnapshot.
type PendingFailureSnapshot struct {
	At      sim.Time         `json:"at"`
	Failure core.UserFailure `json:"failure"`
	Found   bool             `json:"found"`
}

// RecentEntrySnapshot is one in-radius system entry of a RelatorSnapshot.
type RecentEntrySnapshot struct {
	At       sim.Time       `json:"at"`
	Source   core.SysSource `json:"source"`
	Locality Locality       `json:"locality"`
}

// RelatorSnapshot is the serializable in-flight state of one StreamRelator:
// the stream edge plus every event still inside the matching radius. The
// accumulated Evidence is shared across relators and snapshotted separately.
type RelatorSnapshot struct {
	Started bool                     `json:"started"`
	Last    sim.Time                 `json:"last"`
	Fails   []PendingFailureSnapshot `json:"fails,omitempty"`
	Sys     []RecentEntrySnapshot    `json:"sys,omitempty"`
}

// Snapshot captures the relator's stream position and pending window.
func (s *StreamRelator) Snapshot() *RelatorSnapshot {
	snap := &RelatorSnapshot{Started: s.started, Last: s.last}
	for _, f := range s.fails {
		snap.Fails = append(snap.Fails, PendingFailureSnapshot{At: f.at, Failure: f.f, Found: f.found})
	}
	for _, e := range s.sys {
		snap.Sys = append(snap.Sys, RecentEntrySnapshot{At: e.at, Source: e.src, Locality: e.loc})
	}
	return snap
}

// RestoreStreamRelator rebuilds a relator mid-stream: ev, napNode, window
// and radius must match the original construction (they live in the stream
// spec, not the snapshot), and the snapshot supplies the in-flight state.
// Feeding the restored relator the remainder of the stream produces exactly
// the Evidence an uninterrupted relator would have.
func RestoreStreamRelator(ev *Evidence, napNode string, window, radius sim.Time,
	snap *RelatorSnapshot) *StreamRelator {
	s := NewStreamRelator(ev, napNode, window, radius)
	s.started, s.last = snap.Started, snap.Last
	for _, f := range snap.Fails {
		s.fails = append(s.fails, pendingFailure{at: f.At, f: f.Failure, found: f.Found})
	}
	for _, e := range snap.Sys {
		s.sys = append(s.sys, recentEntry{at: e.At, src: e.Source, loc: e.Locality})
	}
	return s
}
