package coalesce

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sim"
)

func userEvent(at sim.Time, node string, f core.UserFailure) core.UserReport {
	return core.UserReport{At: at, Node: node, Failure: f}
}

func sysEvent(at sim.Time, node string, code core.ErrorCode) core.SystemEntry {
	return core.SystemEntry{At: at, Node: node, Source: code.Source(), Code: code}
}

func TestMergeOrdersAndFilters(t *testing.T) {
	reports := []core.UserReport{
		userEvent(30*sim.Second, "Verde", core.UFConnectFailed),
		{At: 10 * sim.Second, Node: "Verde", Failure: core.UFBindFailed, Masked: true},
	}
	sysA := []core.SystemEntry{sysEvent(20*sim.Second, "Verde", core.CodeHCICommandTimeout)}
	sysB := []core.SystemEntry{sysEvent(5*sim.Second, "Giallo", core.CodeSDPTimeout)}
	events := Merge(reports, sysA, sysB)
	if len(events) != 3 {
		t.Fatalf("merged %d events, want 3 (masked excluded)", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("merge not time ordered")
		}
	}
	if events[0].Node != "Giallo" || events[2].IsUser != true {
		t.Errorf("unexpected order: %+v", events)
	}
}

func TestTuplesGapCriterion(t *testing.T) {
	var events []Event
	// Cluster 1: 0s, 10s, 25s (gaps 10, 15). Cluster 2: 100s.
	for _, at := range []sim.Time{0, 10 * sim.Second, 25 * sim.Second, 100 * sim.Second} {
		events = append(events, Event{At: at, Node: "Verde",
			Sys: sysEvent(at, "Verde", core.CodeHCICommandTimeout)})
	}
	tuples := Tuples(events, 20*sim.Second)
	if len(tuples) != 2 {
		t.Fatalf("got %d tuples, want 2", len(tuples))
	}
	if len(tuples[0].Events) != 3 || len(tuples[1].Events) != 1 {
		t.Errorf("tuple sizes %d/%d, want 3/1", len(tuples[0].Events), len(tuples[1].Events))
	}
	if tuples[0].Start != 0 || tuples[0].End != 25*sim.Second {
		t.Errorf("tuple bounds [%v,%v]", tuples[0].Start, tuples[0].End)
	}
}

func TestTuplesPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	Tuples(nil, 0)
}

func TestTupleCountMonotoneInWindow(t *testing.T) {
	// Property: widening the window can only merge tuples, never split.
	prop := func(gaps []uint16) bool {
		var events []Event
		at := sim.Time(0)
		for _, g := range gaps {
			at += sim.Time(g) * sim.Millisecond
			events = append(events, Event{At: at,
				Sys: sysEvent(at, "Verde", core.CodeHCICommandTimeout)})
		}
		prev := -1
		for _, w := range []sim.Time{sim.Second, 5 * sim.Second, 30 * sim.Second} {
			n := len(Tuples(events, w))
			if prev >= 0 && n > prev {
				return false
			}
			prev = n
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSensitivityCurveShapeAndKnee(t *testing.T) {
	// Synthesise bursts of related events separated by long quiet gaps:
	// intra-burst gaps up to ~300s, inter-burst gaps ~2000s. The knee of
	// the tuple-count curve should then sit near the intra-burst spacing,
	// which is how the paper's 330 s arises.
	var events []Event
	at := sim.Time(0)
	for burst := 0; burst < 200; burst++ {
		n := 3 + burst%4
		for i := 0; i < n; i++ {
			events = append(events, Event{At: at,
				Sys: sysEvent(at, "Verde", core.CodeHCICommandTimeout)})
			at += sim.Time(40+(burst*7+i*13)%260) * sim.Second
		}
		at += 2000 * sim.Second
	}
	curve := Sensitivity(events, DefaultWindows())
	if !curve.Decreasing() {
		t.Fatal("tuple-count curve must be non-increasing in the window")
	}
	knee, _ := curve.Knee()
	if knee < 100 || knee > 600 {
		t.Errorf("knee at %v s, want in the few-hundred-seconds regime", knee)
	}
}

func TestSensitivityEmpty(t *testing.T) {
	curve := Sensitivity(nil, DefaultWindows())
	if curve.Len() != 0 {
		t.Error("empty events should give an empty curve")
	}
}

func TestRelateCountsEvidence(t *testing.T) {
	reports := []core.UserReport{
		userEvent(100*sim.Second, "Verde", core.UFConnectFailed),
		userEvent(5000*sim.Second, "Verde", core.UFInquiryScanFailed),
	}
	sys := []core.SystemEntry{
		sysEvent(90*sim.Second, "Verde", core.CodeHCICommandTimeout),
		sysEvent(110*sim.Second, "Giallo", core.CodeHCICommandTimeout),
		// Unrelated, far away in time.
		sysEvent(9000*sim.Second, "Verde", core.CodeBCSPOutOfOrder),
	}
	events := Merge(reports, sys)
	tuples := Tuples(events, PaperWindow)
	ev := NewEvidence()
	Relate(ev, tuples, "Giallo")

	if ev.TotalFailures != 2 {
		t.Fatalf("TotalFailures = %d", ev.TotalFailures)
	}
	localKey := EvidenceKey{Failure: core.UFConnectFailed, Source: core.SrcHCI, Locality: Local}
	napKey := EvidenceKey{Failure: core.UFConnectFailed, Source: core.SrcHCI, Locality: NAP}
	if ev.Counts[localKey] != 1 || ev.Counts[napKey] != 1 {
		t.Errorf("connect evidence = local %d / NAP %d, want 1/1",
			ev.Counts[localKey], ev.Counts[napKey])
	}
	if ev.NoRelationship[core.UFInquiryScanFailed] != 1 {
		t.Errorf("inquiry should have no relationship: %v", ev.NoRelationship)
	}
	if ev.RowTotal(core.UFConnectFailed) != 2 {
		t.Errorf("RowTotal = %d", ev.RowTotal(core.UFConnectFailed))
	}
	if ev.RowTotal(core.UFInquiryScanFailed) != 0 {
		t.Errorf("inquiry RowTotal = %d", ev.RowTotal(core.UFInquiryScanFailed))
	}
}

func TestRelateAccumulatesAcrossCalls(t *testing.T) {
	ev := NewEvidence()
	for i := 0; i < 3; i++ {
		reports := []core.UserReport{userEvent(sim.Time(i)*sim.Hour, "Miseno", core.UFPacketLoss)}
		sys := []core.SystemEntry{sysEvent(sim.Time(i)*sim.Hour+sim.Second, "Miseno", core.CodeBCSPMissing)}
		Relate(ev, Tuples(Merge(reports, sys), PaperWindow), "Giallo")
	}
	key := EvidenceKey{Failure: core.UFPacketLoss, Source: core.SrcBCSP, Locality: Local}
	if ev.Counts[key] != 3 {
		t.Errorf("accumulated evidence = %d, want 3", ev.Counts[key])
	}
	if ev.FailureTotals[core.UFPacketLoss] != 3 {
		t.Errorf("failure totals = %v", ev.FailureTotals)
	}
}

func TestTupleUserFailures(t *testing.T) {
	tu := Tuple{Events: []Event{
		{IsUser: true, User: userEvent(0, "Verde", core.UFBindFailed)},
		{Sys: sysEvent(0, "Verde", core.CodeHotplugTimeout)},
		{IsUser: true, User: userEvent(0, "Verde", core.UFPacketLoss)},
	}}
	fs := tu.UserFailures()
	if len(fs) != 2 || fs[0] != core.UFBindFailed || fs[1] != core.UFPacketLoss {
		t.Errorf("UserFailures = %v", fs)
	}
}

func TestPaperWindowIs330Seconds(t *testing.T) {
	if PaperWindow != 330*sim.Second {
		t.Errorf("paper window = %v", PaperWindow)
	}
}
