package coalesce

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// StreamRelator extracts error-failure relationship evidence from one PANU's
// merged event stream incrementally, holding only the events that can still
// influence future evidence instead of the whole log. It produces exactly
// the Evidence that the retained pipeline — Tuples(Merge(...), window)
// followed by RelateWithRadius — extracts, for any radius <= window:
//
//   - Two events within radius of each other are always members of the same
//     tuple (every consecutive gap between them is <= radius <= window), so
//     evidence pairs never straddle a tuple boundary and pair counting can
//     ignore tuple structure entirely.
//   - A failure's NoRelationship verdict is final once the stream edge moves
//     more than radius past it (no future entry can pair with it), or when a
//     gap larger than the window closes its tuple (with radius <= window the
//     former always happens first or at the same event, so the gap check is
//     a formality that keeps the equivalence argument airtight).
//
// State is therefore bounded by the event rate times the radius — O(1) in
// campaign duration — which is what lets month-scale campaigns stream
// through a repository in constant memory.
type StreamRelator struct {
	ev      *Evidence
	napNode string
	window  sim.Time
	radius  sim.Time

	started bool
	last    sim.Time // time of the most recent event (open tuple end)

	fails []pendingFailure // failures younger than radius, awaiting matches
	sys   []recentEntry    // entries younger than radius
}

// pendingFailure is a user failure still inside the matching radius.
type pendingFailure struct {
	at    sim.Time
	f     core.UserFailure
	found bool
}

// recentEntry is a system entry still inside the matching radius.
type recentEntry struct {
	at  sim.Time
	src core.SysSource
	loc Locality
}

// NewStreamRelator builds a streaming relator for one PANU stream,
// accumulating into ev (share one Evidence across nodes and testbeds to
// aggregate a campaign, exactly like the retained Relate). Entries logged by
// napNode count as NAP-side evidence. radius must not exceed window — the
// precondition of the streaming/retained equivalence (the retained
// RelateWithRadius remains available for radius ablations beyond it).
func NewStreamRelator(ev *Evidence, napNode string, window, radius sim.Time) *StreamRelator {
	if window <= 0 || radius <= 0 {
		panic(fmt.Sprintf("coalesce: non-positive window %v or radius %v", window, radius))
	}
	if radius > window {
		panic(fmt.Sprintf("coalesce: streaming relate needs radius <= window, got %v > %v", radius, window))
	}
	return &StreamRelator{ev: ev, napNode: napNode, window: window, radius: radius}
}

// advance moves the stream edge to t: it closes the open tuple if the gap
// exceeds the window, finalizes failures that fell out of the radius, and
// drops entries that can no longer pair with anything.
func (s *StreamRelator) advance(t sim.Time) {
	if s.started && t < s.last {
		panic(fmt.Sprintf("coalesce: stream time went backwards: %v after %v", t, s.last))
	}
	if s.started && t-s.last > s.window {
		// Gap criterion: the open tuple closed before t.
		s.flushFailures(len(s.fails))
		s.sys = s.sys[:0]
	} else {
		// Expire by radius. Both slices are time-ordered, so the survivors
		// are a suffix.
		cut := 0
		for cut < len(s.fails) && t-s.fails[cut].at > s.radius {
			cut++
		}
		s.flushFailures(cut)
		keep := 0
		for keep < len(s.sys) && t-s.sys[keep].at > s.radius {
			keep++
		}
		if keep > 0 {
			s.sys = s.sys[:copy(s.sys, s.sys[keep:])]
		}
	}
	s.started, s.last = true, t
}

// flushFailures finalizes the n oldest pending failures.
func (s *StreamRelator) flushFailures(n int) {
	for i := 0; i < n; i++ {
		if !s.fails[i].found {
			s.ev.NoRelationship[s.fails[i].f]++
		}
	}
	if n > 0 {
		s.fails = s.fails[:copy(s.fails, s.fails[n:])]
	}
}

// AddUser ingests one (unmasked) user-level failure at its log position.
// Events must arrive in the stream's merge order: non-decreasing time.
func (s *StreamRelator) AddUser(at sim.Time, f core.UserFailure) {
	s.advance(at)
	s.ev.FailureTotals[f]++
	s.ev.TotalFailures++
	found := false
	// Every retained entry is within radius of the edge, hence of this
	// failure; all of them are evidence.
	for _, e := range s.sys {
		s.ev.Counts[EvidenceKey{Failure: f, Source: e.src, Locality: e.loc}]++
		found = true
	}
	s.fails = append(s.fails, pendingFailure{at: at, f: f, found: found})
}

// AddSys ingests one system-level entry at its log position.
func (s *StreamRelator) AddSys(at sim.Time, node string, src core.SysSource) {
	s.advance(at)
	loc := Local
	if node == s.napNode {
		loc = NAP
	}
	// Every pending failure is within radius of the edge, hence of this
	// entry; the entry is evidence for all of them.
	for i := range s.fails {
		s.ev.Counts[EvidenceKey{Failure: s.fails[i].f, Source: src, Locality: loc}]++
		s.fails[i].found = true
	}
	s.sys = append(s.sys, recentEntry{at: at, src: src, loc: loc})
}

// Close finalizes the stream: failures still awaiting a match get their
// NoRelationship verdict. The relator must not be used afterwards.
func (s *StreamRelator) Close() {
	s.flushFailures(len(s.fails))
	s.sys = nil
}
