// Package l2cap implements the Logical Link Control and Adaptation Protocol
// layer of the simulated stack: connection-oriented channels identified by
// (CID, PSM), the four-way connect/configure signalling ridden over HCI, and
// SDU segmentation/reassembly onto baseband packets.
//
// Its Table 1 failure mode is "unexpected start or continuation frames
// received": a reassembly-state violation that the paper links to switch-
// role command failures (0.9 % local, 4.4 % on the NAP) and connection
// failures. The reassembler here is a real state machine; the fault injector
// corrupts segment framing bits and the state machine does the classifying.
package l2cap

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/hci"
	"repro/internal/sim"
)

// Well-known protocol/service multiplexer values.
const (
	PSMSDP  uint16 = 0x0001
	PSMBNEP uint16 = 0x000F
)

// HeaderLen is the basic-mode L2CAP header: 2 bytes length + 2 bytes CID.
const HeaderLen = 4

// DefaultMTU is the default signalling MTU; BNEP negotiates 1691.
const DefaultMTU = 672

// Config parameterises the L2CAP layer.
type Config struct {
	// MTU is the negotiated maximum SDU payload.
	MTU int

	// SignalSize is the typical signalling PDU size in bytes.
	SignalSize int

	// UnexpectedFrameProb is the per-signalling-exchange probability that a
	// mangled frame violates the reassembly state machine.
	UnexpectedFrameProb float64

	// DataFaultPerPacket is the per-data-packet probability of the same
	// framing violation during transfer (much rarer).
	DataFaultPerPacket float64
}

// DefaultConfig returns calibrated L2CAP parameters.
func DefaultConfig() Config {
	return Config{
		MTU:                 1691,
		SignalSize:          12,
		UnexpectedFrameProb: 2.5e-4,
		DataFaultPerPacket:  1e-7,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.MTU < 48:
		return fmt.Errorf("l2cap: MTU %d below minimum 48", c.MTU)
	case c.SignalSize <= 0:
		return fmt.Errorf("l2cap: non-positive signal size")
	case c.UnexpectedFrameProb < 0 || c.UnexpectedFrameProb > 1 ||
		c.DataFaultPerPacket < 0 || c.DataFaultPerPacket > 1:
		return fmt.Errorf("l2cap: probability out of range")
	default:
		return nil
	}
}

// ChannelState tracks the signalling lifecycle.
type ChannelState int

// Channel states.
const (
	StateClosed ChannelState = iota
	StateWaitConnect
	StateConfig
	StateOpen
)

// String names the state.
func (s ChannelState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateWaitConnect:
		return "wait-connect"
	case StateConfig:
		return "config"
	case StateOpen:
		return "open"
	default:
		return fmt.Sprintf("ChannelState(%d)", int(s))
	}
}

// Channel is one connection-oriented L2CAP channel.
type Channel struct {
	LocalCID  uint16
	RemoteCID uint16
	PSM       uint16
	Handle    hci.Handle
	State     ChannelState
}

// Result reports an L2CAP operation.
type Result struct {
	Dur sim.Time
	Err error
}

// Mux is the L2CAP layer of one node.
type Mux struct {
	cfg  Config
	node string
	hci  *hci.Host
	rng  *rand.Rand
	sink hci.Sink

	nextCID  uint16
	channels map[uint16]*Channel

	unexpectedFrames int
}

// NewMux builds the L2CAP layer over an HCI host.
func NewMux(cfg Config, node string, h *hci.Host, rng *rand.Rand, sink hci.Sink) *Mux {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if h == nil {
		panic("l2cap: nil HCI host")
	}
	return &Mux{
		cfg: cfg, node: node, hci: h, rng: rng, sink: sink,
		nextCID:  0x0040, // dynamic CIDs start at 0x0040 per spec
		channels: make(map[uint16]*Channel),
	}
}

// MTU reports the configured MTU.
func (m *Mux) MTU() int { return m.cfg.MTU }

// OpenChannels reports the number of non-closed channels.
func (m *Mux) OpenChannels() int { return len(m.channels) }

// UnexpectedFrames reports the count of framing-state violations observed.
func (m *Mux) UnexpectedFrames() int { return m.unexpectedFrames }

// raiseUnexpected logs and returns the unexpected-frame error.
func (m *Mux) raiseUnexpected(op string, dur sim.Time) Result {
	m.unexpectedFrames++
	if m.sink != nil {
		m.sink(core.CodeL2CAPUnexpectedFrame, op)
	}
	return Result{Dur: dur, Err: core.NewSimError(core.CodeL2CAPUnexpectedFrame, op, m.node)}
}

// Connect runs the connect + configure signalling toward psm over an HCI
// handle. HCI-level failures (busy timeouts, stale handles) propagate, which
// is the paper's dominant cause of "Connect failed".
func (m *Mux) Connect(hd hci.Handle, psm uint16) (*Channel, Result) {
	var total sim.Time
	// Connect request/response + two config exchanges: four signalling PDUs.
	for i, op := range []string{
		"l2cap.connect_req", "l2cap.connect_rsp",
		"l2cap.config_req", "l2cap.config_rsp",
	} {
		res := m.hci.CommandOnHandle(op, hd, m.cfg.SignalSize)
		total += res.Dur
		if res.Err != nil {
			return nil, Result{Dur: total, Err: res.Err}
		}
		// A mangled signalling frame can violate the peer's state machine.
		if m.rng.Float64() < m.cfg.UnexpectedFrameProb {
			r := m.raiseUnexpected(op, total)
			return nil, r
		}
		_ = i
	}
	ch := &Channel{
		LocalCID:  m.nextCID,
		RemoteCID: m.nextCID + 0x1000, // peer's dynamic CID (simulated)
		PSM:       psm,
		Handle:    hd,
		State:     StateOpen,
	}
	m.nextCID++
	m.channels[ch.LocalCID] = ch
	return ch, Result{Dur: total}
}

// Disconnect tears a channel down with the two-way disconnect handshake.
func (m *Mux) Disconnect(ch *Channel) Result {
	if ch == nil || ch.State != StateOpen {
		return m.raiseUnexpected("l2cap.disconnect_req", 0)
	}
	var total sim.Time
	for _, op := range []string{"l2cap.disconnect_req", "l2cap.disconnect_rsp"} {
		res := m.hci.CommandOnHandle(op, ch.Handle, m.cfg.SignalSize)
		total += res.Dur
		if res.Err != nil {
			// Half-open teardown still closes locally.
			break
		}
	}
	ch.State = StateClosed
	delete(m.channels, ch.LocalCID)
	return Result{Dur: total}
}

// Reset drops all channel state (part of the "BT stack reset" SIRA).
func (m *Mux) Reset() {
	m.channels = make(map[uint16]*Channel)
}

// DataFault samples whether a data-phase framing violation hits this packet
// and logs it if so. The workload consults it once per transferred packet.
func (m *Mux) DataFault() bool {
	if m.rng.Float64() < m.cfg.DataFaultPerPacket {
		m.raiseUnexpected("l2cap.data", 0)
		return true
	}
	return false
}
