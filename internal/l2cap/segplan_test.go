package l2cap

import (
	"testing"

	"repro/internal/core"
)

// TestPlanSDUMatchesSegmentSDU pins the value-type plan to the materialised
// slice API across packet types and SDU lengths.
func TestPlanSDUMatchesSegmentSDU(t *testing.T) {
	for _, pt := range core.PacketTypes() {
		for _, n := range []int{1, 4, 13, 17, 100, 339, 800, 1500, 1691} {
			plan := PlanSDU(n, pt)
			segs := SegmentSDU(n, pt)
			if plan.Count != len(segs) {
				t.Fatalf("%v/%dB: plan count %d != %d segments", pt, n, plan.Count, len(segs))
			}
			total := 0
			for i, seg := range segs {
				if got := plan.Seg(i); got != seg {
					t.Errorf("%v/%dB fragment %d: plan %+v != segment %+v", pt, n, i, got, seg)
				}
				if plan.Len(i) != seg.Len {
					t.Errorf("%v/%dB fragment %d: Len %d != %d", pt, n, i, plan.Len(i), seg.Len)
				}
				total += seg.Len
			}
			if plan.Total() != total {
				t.Errorf("%v/%dB: Total %d != %d", pt, n, plan.Total(), total)
			}
			if plan.Total() != n+HeaderLen {
				t.Errorf("%v/%dB: Total %d != SDU+header %d", pt, n, plan.Total(), n+HeaderLen)
			}
		}
	}
}

// TestSegPlanIterationAllocFree proves the data plane's segmentation path
// performs zero heap allocations — the point of replacing the []Segment
// return on a 5.5M-fragment-per-day path.
func TestSegPlanIterationAllocFree(t *testing.T) {
	var sink int
	allocs := testing.AllocsPerRun(200, func() {
		plan := PlanSDU(1500, core.PTDH5)
		for i := 0; i < plan.Count; i++ {
			sink += plan.Len(i)
		}
	})
	if allocs != 0 {
		t.Errorf("SegPlan iteration allocates %.1f objects per run, want 0", allocs)
	}
	_ = sink
}

// TestSegPlanPanics pins the guard rails.
func TestSegPlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PlanSDU(0) should panic")
		}
	}()
	PlanSDU(0, core.PTDH1)
}

// BenchmarkSegmentSDU measures the compatibility wrapper (one slice
// allocation per SDU).
func BenchmarkSegmentSDU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		segs := SegmentSDU(1500, core.PTDH5)
		_ = segs
	}
}

// BenchmarkSegPlan measures the zero-alloc plan iteration the data plane
// uses.
func BenchmarkSegPlan(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		plan := PlanSDU(1500, core.PTDH5)
		for j := 0; j < plan.Count; j++ {
			sink += plan.Len(j)
		}
	}
	_ = sink
}
