package l2cap

import (
	"fmt"

	"repro/internal/core"
)

// Segment is one baseband-layer fragment of an L2CAP PDU. Start fragments
// carry the L2CAP header (L_CH = start-of-PDU in the baseband payload
// header); the rest are continuations.
type Segment struct {
	Start bool
	Len   int // payload bytes carried, including the header on start frames
}

// SegPlan is the value-type segmentation plan of one SDU: Count fragments,
// each carrying Budget payload bytes except the last, which carries LastLen.
// It replaces materialised []Segment slices on the data-plane hot path
// (5.5M fragments per virtual day), where the slice allocation dominated the
// campaign's heap profile; iterate with Seg or Len instead.
type SegPlan struct {
	Count   int // number of fragments, always >= 1
	Budget  int // payload bytes per full fragment (the packet type's budget)
	LastLen int // payload bytes in the final fragment (1..Budget)
}

// PlanSDU computes the segmentation plan for an SDU of sduLen bytes over the
// given packet type: a 4-byte L2CAP header travels in the first fragment,
// and every fragment is bounded by the packet type's payload budget. It
// panics on non-positive SDU length — callers own the never-empty invariant.
func PlanSDU(sduLen int, pt core.PacketType) SegPlan {
	if sduLen <= 0 {
		panic(fmt.Sprintf("l2cap: non-positive SDU length %d", sduLen))
	}
	budget := pt.Payload()
	if budget <= 0 {
		panic(fmt.Sprintf("l2cap: packet type %v has no payload budget", pt))
	}
	total := sduLen + HeaderLen
	count := (total + budget - 1) / budget
	last := total - (count-1)*budget
	return SegPlan{Count: count, Budget: budget, LastLen: last}
}

// Len reports the payload length of fragment i (0-based). Out-of-range
// indices panic.
func (p SegPlan) Len(i int) int {
	if i < 0 || i >= p.Count {
		panic(fmt.Sprintf("l2cap: fragment index %d out of range [0,%d)", i, p.Count))
	}
	if i == p.Count-1 {
		return p.LastLen
	}
	return p.Budget
}

// Seg materialises fragment i as a Segment value (fragment 0 is the start).
func (p SegPlan) Seg(i int) Segment {
	return Segment{Start: i == 0, Len: p.Len(i)}
}

// Total reports the plan's total byte count (SDU plus L2CAP header).
func (p SegPlan) Total() int { return (p.Count-1)*p.Budget + p.LastLen }

// SegmentSDU splits an SDU into baseband fragments as a materialised slice.
// It is a compatibility wrapper over PlanSDU for callers (mostly tests) that
// want the fragments as values; the data plane iterates the plan directly.
func SegmentSDU(sduLen int, pt core.PacketType) []Segment {
	plan := PlanSDU(sduLen, pt)
	segs := make([]Segment, plan.Count)
	for i := range segs {
		segs[i] = plan.Seg(i)
	}
	return segs
}

// ReassemblyError classifies framing-state violations.
type ReassemblyError int

// Violations of the start/continuation protocol.
const (
	ErrNone              ReassemblyError = iota
	ErrContinuationFirst                 // continuation with no SDU in progress
	ErrStartMidSDU                       // new start before the previous SDU completed
	ErrOverflow                          // fragments exceed the expected SDU length
)

// String names the violation.
func (e ReassemblyError) String() string {
	switch e {
	case ErrNone:
		return "none"
	case ErrContinuationFirst:
		return "continuation-without-start"
	case ErrStartMidSDU:
		return "start-mid-sdu"
	case ErrOverflow:
		return "fragment-overflow"
	default:
		return fmt.Sprintf("ReassemblyError(%d)", int(e))
	}
}

// Reassembler rebuilds SDUs from fragments and detects the "unexpected start
// or continuation frames" condition of Table 1.
type Reassembler struct {
	inProgress bool
	expect     int // bytes still expected for the current SDU
	complete   int // SDUs fully reassembled
	violations int
}

// Expect arms the reassembler for an SDU of sduLen payload bytes.
func (r *Reassembler) expectTotal(sduLen int) int { return sduLen + HeaderLen }

// Feed consumes one fragment destined for an SDU of sduLen bytes and
// classifies it. ErrNone means the fragment was consumed cleanly.
func (r *Reassembler) Feed(seg Segment, sduLen int) ReassemblyError {
	switch {
	case seg.Start && r.inProgress:
		r.violations++
		// Resynchronise on the new start.
		r.expect = r.expectTotal(sduLen) - seg.Len
		r.inProgress = r.expect > 0
		return ErrStartMidSDU
	case !seg.Start && !r.inProgress:
		r.violations++
		return ErrContinuationFirst
	case seg.Start:
		r.expect = r.expectTotal(sduLen) - seg.Len
		if r.expect < 0 {
			r.violations++
			r.inProgress = false
			return ErrOverflow
		}
		r.inProgress = r.expect > 0
		if !r.inProgress {
			r.complete++
		}
		return ErrNone
	default:
		r.expect -= seg.Len
		if r.expect < 0 {
			r.violations++
			r.inProgress = false
			return ErrOverflow
		}
		if r.expect == 0 {
			r.inProgress = false
			r.complete++
		}
		return ErrNone
	}
}

// Complete reports the number of fully reassembled SDUs.
func (r *Reassembler) Complete() int { return r.complete }

// Violations reports the number of framing-state violations seen.
func (r *Reassembler) Violations() int { return r.violations }

// InProgress reports whether an SDU is partially assembled.
func (r *Reassembler) InProgress() bool { return r.inProgress }
