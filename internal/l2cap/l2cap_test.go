package l2cap

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hci"
	"repro/internal/sim"
	"repro/internal/transport"
)

type fixture struct {
	mux  *Mux
	host *hci.Host
	now  sim.Time
	logs []core.ErrorCode
}

func newFixture(t *testing.T, mutate func(*Config)) *fixture {
	t.Helper()
	f := &fixture{}
	hcfg := hci.DefaultConfig()
	hcfg.TimeoutProbIdle, hcfg.TimeoutProbBusy, hcfg.InquiryFailProb = 0, 0, 0
	sink := func(code core.ErrorCode, op string) { f.logs = append(f.logs, code) }
	f.host = hci.NewHost(hcfg, "Verde",
		transport.NewH4(transport.H4Config{BaudRate: 115200}),
		func() sim.Time { return f.now },
		rand.New(rand.NewPCG(7, 8)), sink)
	cfg := DefaultConfig()
	cfg.UnexpectedFrameProb, cfg.DataFaultPerPacket = 0, 0
	if mutate != nil {
		mutate(&cfg)
	}
	f.mux = NewMux(cfg, "Verde", f.host, rand.New(rand.NewPCG(9, 10)), sink)
	return f
}

func (f *fixture) connect(t *testing.T) (*Channel, hci.Handle) {
	t.Helper()
	hd, res := f.host.CreateConnection("Giallo")
	if res.Err != nil {
		t.Fatalf("hci create: %v", res.Err)
	}
	f.now += 10 * sim.Second // leave the busy window
	ch, cres := f.mux.Connect(hd, PSMBNEP)
	if cres.Err != nil {
		t.Fatalf("l2cap connect: %v", cres.Err)
	}
	return ch, hd
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.MTU = 10
	if bad.Validate() == nil {
		t.Error("tiny MTU should fail")
	}
}

func TestConnectLifecycle(t *testing.T) {
	f := newFixture(t, nil)
	ch, _ := f.connect(t)
	if ch.State != StateOpen {
		t.Fatalf("state = %v, want open", ch.State)
	}
	if ch.PSM != PSMBNEP {
		t.Errorf("psm = %#x", ch.PSM)
	}
	if ch.LocalCID < 0x0040 {
		t.Errorf("dynamic CID %#x below 0x0040", ch.LocalCID)
	}
	if f.mux.OpenChannels() != 1 {
		t.Errorf("OpenChannels = %d", f.mux.OpenChannels())
	}
	if res := f.mux.Disconnect(ch); res.Err != nil {
		t.Fatalf("disconnect: %v", res.Err)
	}
	if ch.State != StateClosed || f.mux.OpenChannels() != 0 {
		t.Error("channel not closed")
	}
}

func TestConnectPropagatesHCIFailure(t *testing.T) {
	f := newFixture(t, nil)
	// Stale handle: HCI invalid-handle must surface through Connect.
	ch, res := f.mux.Connect(hci.Handle(999), PSMSDP)
	if ch != nil {
		t.Fatal("channel allocated despite failure")
	}
	var se *core.SimError
	if !errors.As(res.Err, &se) || se.Code != core.CodeHCIInvalidHandle {
		t.Fatalf("want HCI invalid handle, got %v", res.Err)
	}
}

func TestConnectUnexpectedFrameFault(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.UnexpectedFrameProb = 1 })
	hd, _ := f.host.CreateConnection("Giallo")
	f.now += 10 * sim.Second
	_, res := f.mux.Connect(hd, PSMBNEP)
	var se *core.SimError
	if !errors.As(res.Err, &se) || se.Code != core.CodeL2CAPUnexpectedFrame {
		t.Fatalf("want unexpected-frame error, got %v", res.Err)
	}
	if f.mux.UnexpectedFrames() != 1 {
		t.Errorf("UnexpectedFrames = %d", f.mux.UnexpectedFrames())
	}
	found := false
	for _, c := range f.logs {
		if c == core.CodeL2CAPUnexpectedFrame {
			found = true
		}
	}
	if !found {
		t.Error("violation not logged to sink")
	}
}

func TestDisconnectNilOrClosedChannel(t *testing.T) {
	f := newFixture(t, nil)
	if res := f.mux.Disconnect(nil); res.Err == nil {
		t.Error("disconnect(nil) should fail")
	}
	ch, _ := f.connect(t)
	f.mux.Disconnect(ch)
	if res := f.mux.Disconnect(ch); res.Err == nil {
		t.Error("double disconnect should fail")
	}
}

func TestReset(t *testing.T) {
	f := newFixture(t, nil)
	f.connect(t)
	f.mux.Reset()
	if f.mux.OpenChannels() != 0 {
		t.Error("reset should drop channels")
	}
}

func TestDataFault(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.DataFaultPerPacket = 1 })
	if !f.mux.DataFault() {
		t.Error("certain data fault did not fire")
	}
	f2 := newFixture(t, nil)
	if f2.mux.DataFault() {
		t.Error("zero-probability data fault fired")
	}
}

func TestSegmentSDUProperties(t *testing.T) {
	prop := func(sduLen uint16, ptIdx uint8) bool {
		if sduLen == 0 {
			return true
		}
		pt := core.PacketTypes()[int(ptIdx)%6]
		segs := SegmentSDU(int(sduLen), pt)
		if len(segs) == 0 || !segs[0].Start {
			return false
		}
		total := 0
		for i, s := range segs {
			if i > 0 && s.Start {
				return false
			}
			if s.Len <= 0 || s.Len > pt.Payload() {
				return false
			}
			total += s.Len
		}
		return total == int(sduLen)+HeaderLen
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSegmentSDUExactFit(t *testing.T) {
	// 1691-byte BNEP MTU + 4 header = 1695 bytes over DH5 (339) = 5 packets.
	segs := SegmentSDU(1691, core.PTDH5)
	if len(segs) != 5 {
		t.Errorf("BNEP MTU over DH5 = %d fragments, want 5", len(segs))
	}
	// Same SDU over DM1 (17B): ceil(1695/17) = 100 packets.
	segs = SegmentSDU(1691, core.PTDM1)
	if len(segs) != 100 {
		t.Errorf("BNEP MTU over DM1 = %d fragments, want 100", len(segs))
	}
}

func TestSegmentSDUPanicsOnZeroLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	SegmentSDU(0, core.PTDH1)
}

func TestReassemblerCleanStream(t *testing.T) {
	var r Reassembler
	for n := 1; n <= 2000; n += 97 {
		for _, seg := range SegmentSDU(n, core.PTDH3) {
			if err := r.Feed(seg, n); err != ErrNone {
				t.Fatalf("clean stream sdu=%d: %v", n, err)
			}
		}
	}
	if r.Violations() != 0 {
		t.Errorf("violations = %d", r.Violations())
	}
	if r.Complete() == 0 {
		t.Error("no SDUs completed")
	}
	if r.InProgress() {
		t.Error("stream should end on an SDU boundary")
	}
}

func TestReassemblerContinuationFirst(t *testing.T) {
	var r Reassembler
	if err := r.Feed(Segment{Start: false, Len: 10}, 100); err != ErrContinuationFirst {
		t.Fatalf("got %v, want continuation-without-start", err)
	}
	if r.Violations() != 1 {
		t.Errorf("violations = %d", r.Violations())
	}
}

func TestReassemblerStartMidSDU(t *testing.T) {
	var r Reassembler
	segs := SegmentSDU(400, core.PTDH1) // multiple fragments
	if err := r.Feed(segs[0], 400); err != ErrNone {
		t.Fatal(err)
	}
	// A fresh start before the SDU completes.
	if err := r.Feed(Segment{Start: true, Len: 27}, 400); err != ErrStartMidSDU {
		t.Fatalf("got %v, want start-mid-sdu", err)
	}
	// The reassembler resynchronises on the new SDU.
	if !r.InProgress() {
		t.Error("should be mid-SDU after resync")
	}
}

func TestReassemblerOverflow(t *testing.T) {
	var r Reassembler
	if err := r.Feed(Segment{Start: true, Len: 20}, 10); err != ErrOverflow {
		t.Fatalf("got %v, want overflow", err)
	}
}

func TestReassemblerErrorStrings(t *testing.T) {
	for _, e := range []ReassemblyError{ErrNone, ErrContinuationFirst, ErrStartMidSDU, ErrOverflow} {
		if e.String() == "" {
			t.Errorf("empty string for %d", int(e))
		}
	}
}

func TestChannelStateStrings(t *testing.T) {
	for _, s := range []ChannelState{StateClosed, StateWaitConnect, StateConfig, StateOpen} {
		if s.String() == "" {
			t.Errorf("empty string for state %d", int(s))
		}
	}
}
