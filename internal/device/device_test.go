package device

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/transport"
)

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) != 7 {
		t.Fatalf("catalogue has %d machines, the testbed has 7", len(cat))
	}
	naps := 0
	for _, s := range cat {
		if s.IsNAP {
			naps++
		}
	}
	if naps != 1 {
		t.Fatalf("%d NAPs, want 1", naps)
	}
	if cat[0].Name != "Giallo" || !cat[0].IsNAP {
		t.Error("Giallo must be the NAP, first in the catalogue")
	}
	if len(PANUs()) != 6 {
		t.Errorf("PANUs = %d, want 6", len(PANUs()))
	}
}

func TestHALDefectOnlyOnAzzurroAndWin(t *testing.T) {
	for _, s := range Catalog() {
		want := s.Name == "Azzurro" || s.Name == "Win"
		if s.OS.HALDefect != want {
			t.Errorf("%s HALDefect = %v, want %v", s.Name, s.OS.HALDefect, want)
		}
	}
}

func TestPDAsUseBCSP(t *testing.T) {
	for _, s := range Catalog() {
		if s.IsPDA && s.Transport != transport.KindBCSP {
			t.Errorf("PDA %s uses %v, want BCSP", s.Name, s.Transport)
		}
		if !s.IsPDA && s.Transport == transport.KindBCSP {
			t.Errorf("PC %s uses BCSP", s.Name)
		}
	}
	pdas := 0
	for _, s := range Catalog() {
		if s.IsPDA {
			pdas++
		}
	}
	if pdas != 2 {
		t.Errorf("%d PDAs, want 2 (iPAQ, Zaurus)", pdas)
	}
}

func TestWindowsRunsBroadcom(t *testing.T) {
	win, err := ByName("Win")
	if err != nil {
		t.Fatal(err)
	}
	if win.OS.Family != "Windows" || win.BTStack != "Broadcomm" {
		t.Errorf("Win = %+v", win)
	}
	// Everyone else runs BlueZ on Linux.
	for _, s := range Catalog() {
		if s.Name == "Win" {
			continue
		}
		if s.OS.Family != "Linux" || s.BTStack != "BlueZ 2.10" {
			t.Errorf("%s: OS=%s stack=%s", s.Name, s.OS.Family, s.BTStack)
		}
	}
}

func TestDistancesCoverPaperGeometry(t *testing.T) {
	counts := map[float64]int{}
	for _, s := range PANUs() {
		counts[s.DistanceM]++
	}
	for _, d := range []float64{0.5, 5, 7} {
		if counts[d] != 2 {
			t.Errorf("distance %v has %d PANUs, want 2", d, counts[d])
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("Miseno"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestBuildTransportKinds(t *testing.T) {
	world := sim.NewWorld(5)
	for _, s := range Catalog() {
		tr := s.BuildTransport(world)
		if tr.Kind() != s.Transport {
			t.Errorf("%s transport = %v, want %v", s.Name, tr.Kind(), s.Transport)
		}
	}
}

func TestBuildHostRoundTrip(t *testing.T) {
	world := sim.NewWorld(6)
	var connID uint64
	nap, _ := ByName("Giallo")
	napHost := nap.BuildHost(world, &connID, nil)
	if napHost.NAP == nil {
		t.Fatal("Giallo host has no NAP role")
	}
	ipaq, _ := ByName("Ipaq")
	ipaqHost := ipaq.BuildHost(world, &connID, nil)
	if ipaqHost.PANU == nil || !ipaqHost.IsPDA {
		t.Fatal("Ipaq host misconfigured")
	}
	if ipaqHost.Transport.Kind() != transport.KindBCSP {
		t.Error("Ipaq must ride BCSP")
	}
	if ipaqHost.DistanceM != 7 {
		t.Errorf("Ipaq distance = %v", ipaqHost.DistanceM)
	}
}

func TestHostConfigReflectsDistance(t *testing.T) {
	verde, _ := ByName("Verde")
	ipaq, _ := ByName("Ipaq")
	if verde.HostConfig().Radio.DistanceM != 0.5 {
		t.Error("Verde radio distance wrong")
	}
	if ipaq.HostConfig().Radio.DistanceM != 7 {
		t.Error("Ipaq radio distance wrong")
	}
}

func TestBootTimesPositive(t *testing.T) {
	for _, s := range Catalog() {
		if s.OS.BootTime <= 0 || s.OS.AppRestartTime <= 0 {
			t.Errorf("%s has non-positive recovery timings", s.Name)
		}
	}
}
