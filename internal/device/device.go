// Package device is the hardware catalogue of the paper's testbeds: the
// seven heterogeneous machines of Figure 1/Table 1, their operating systems,
// Bluetooth stacks, host transports, and antenna distances from the NAP.
//
// Each testbed is composed of one NAP (Giallo) and six PANUs (Verde, Miseno,
// Azzurro, Win, the iPAQ H3870 and the Zaurus SL-5600). Both testbeds use
// the same configuration, per the paper. The PDAs speak BCSP to their
// on-board radios; the PCs use USB dongles; the Windows machine runs the
// Broadcom stack (the native XP stack exposes no PAN API); Azzurro (Fedora)
// and Win carry the HAL/hotplug defect behind the bind failures of Figure 4.
//
// The paper states antennas sit at 0.5 m, 5 m and 7 m but not which host
// sits where; we assign two PANUs per distance (documented in
// ARCHITECTURE.md as a reproduction assumption).
package device

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/transport"
)

// Spec describes one testbed machine.
type Spec struct {
	Name       string
	CPU        string
	RAM        string
	BTHardware string
	BTStack    string

	OS        stack.OSInfo
	Transport transport.Kind
	DistanceM float64
	IsPDA     bool
	IsNAP     bool
}

// Catalog returns the seven machines of one testbed, NAP first.
func Catalog() []Spec {
	return []Spec{
		{
			Name: "Giallo", CPU: "P4 1.60GHz", RAM: "128Mb",
			BTHardware: "Anycom CC3030", BTStack: "BlueZ 2.10",
			OS: stack.OSInfo{
				Family: "Linux", Distribution: "Mandrake", Kernel: "2.4.21-0.13mdk",
				BootTime: 95 * sim.Second, AppRestartTime: 7 * sim.Second,
			},
			Transport: transport.KindUSB, DistanceM: 0, IsNAP: true,
		},
		{
			Name: "Verde", CPU: "P3 350MHz", RAM: "256Mb",
			BTHardware: "3COM 3CREB96B", BTStack: "BlueZ 2.10",
			OS: stack.OSInfo{
				Family: "Linux", Distribution: "Mandrake", Kernel: "2.4.21-0.13mdk",
				BootTime: 110 * sim.Second, AppRestartTime: 9 * sim.Second,
			},
			Transport: transport.KindUSB, DistanceM: 0.5,
		},
		{
			Name: "Miseno", CPU: "Celeron 700MHz", RAM: "128Mb",
			BTHardware: "Belkin F8T003", BTStack: "BlueZ 2.10",
			OS: stack.OSInfo{
				Family: "Linux", Distribution: "Debian", Kernel: "2.6.5-1-386",
				BootTime: 100 * sim.Second, AppRestartTime: 8 * sim.Second,
			},
			Transport: transport.KindUSB, DistanceM: 5,
		},
		{
			Name: "Azzurro", CPU: "P3 350MHz", RAM: "256Mb",
			BTHardware: "Digicom Palladio", BTStack: "BlueZ 2.10",
			OS: stack.OSInfo{
				Family: "Linux", Distribution: "Fedora", Kernel: "2.6.9-1-667",
				HALDefect: true, // the paper's HAL/hotplug defect (Figure 4)
				BootTime:  105 * sim.Second, AppRestartTime: 8 * sim.Second,
			},
			Transport: transport.KindUSB, DistanceM: 5,
		},
		{
			Name: "Win", CPU: "P4 1.80Ghz", RAM: "512Mb",
			BTHardware: "Sitecom CN-500", BTStack: "Broadcomm",
			OS: stack.OSInfo{
				Family: "Windows", Distribution: "XP SP2", Kernel: "5.1.2600",
				HALDefect: true, // bind failures also manifest on Win
				BootTime:  130 * sim.Second, AppRestartTime: 10 * sim.Second,
			},
			Transport: transport.KindUSB, DistanceM: 0.5,
		},
		{
			Name: "Ipaq", CPU: "StrongARM 206MHz", RAM: "64Mb",
			BTHardware: "on board", BTStack: "BlueZ 2.10",
			OS: stack.OSInfo{
				Family: "Linux", Distribution: "Familiar 0.8.1", Kernel: "2.4.19-rmk6-pxa1-hh37",
				BootTime: 55 * sim.Second, AppRestartTime: 14 * sim.Second,
			},
			Transport: transport.KindBCSP, DistanceM: 7, IsPDA: true,
		},
		{
			Name: "Zaurus", CPU: "XScale 400MHz", RAM: "32Mb",
			BTHardware: "on board", BTStack: "BlueZ 2.10",
			OS: stack.OSInfo{
				Family: "Linux", Distribution: "OpenZaurus 3.5.2", Kernel: "2.4.18-rmk7-pxa3-embedix",
				BootTime: 50 * sim.Second, AppRestartTime: 13 * sim.Second,
			},
			Transport: transport.KindBCSP, DistanceM: 7, IsPDA: true,
		},
	}
}

// NAP returns the catalogue's access-point machine.
func NAP() Spec {
	for _, s := range Catalog() {
		if s.IsNAP {
			return s
		}
	}
	panic("device: catalogue has no NAP")
}

// PANUs returns the catalogue minus the NAP.
func PANUs() []Spec {
	var out []Spec
	for _, s := range Catalog() {
		if !s.IsNAP {
			out = append(out, s)
		}
	}
	return out
}

// ByName looks a machine up in the catalogue.
func ByName(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("device: no machine %q in the catalogue", name)
}

// BuildTransport constructs the machine's host transport.
func (s Spec) BuildTransport(world *sim.World) transport.Transport {
	switch s.Transport {
	case transport.KindBCSP:
		return transport.NewBCSPSim(transport.DefaultBCSPConfig(), s.Name,
			world.RNG("transport."+s.Name))
	case transport.KindUSB:
		return transport.NewUSB(transport.DefaultUSBConfig(), s.Name,
			func() sim.Time { return world.Now() },
			world.RNG("transport."+s.Name))
	default:
		return transport.NewH4(transport.H4Config{BaudRate: 115200})
	}
}

// HostConfig returns the machine's stack configuration: the calibrated
// defaults with per-device adjustments (distance-specific radio parameters;
// nothing else differs across machines — heterogeneity enters through the
// transport kind and the OS flags).
func (s Spec) HostConfig() stack.Config {
	return stack.DefaultHostConfig(s.DistanceM)
}

// BuildHost assembles the machine as a live simulation host.
func (s Spec) BuildHost(world *sim.World, nextConnID *uint64, sink stack.Sink) *stack.Host {
	return stack.NewHost(s.HostConfig(), world, s.Name, s.OS, s.DistanceM,
		s.IsPDA, s.IsNAP, s.BuildTransport(world), nextConnID, sink)
}
