// Package transport models the host↔controller paths of the testbed
// machines: H4 UART serial, USB, and the BlueCore Serial Protocol (BCSP)
// used by the PDAs (iPAQ H3870, Zaurus SL-5600).
//
// The paper's "Sw role command failed" failures cluster on the PDAs because
// BCSP multiplexes parallel information flows over a single UART link with
// its own sequencing, and out-of-order or missing BCSP packets corrupt
// in-flight HCI exchanges (49.7 % of switch-role command failures). The BCSP
// implementation here is a real framing codec plus a sliding-window reliable
// link engine; the simulation adapter drives it over a lossy, reordering
// byte pipe.
package transport

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/sim"
)

// Kind distinguishes the host transport technologies in the testbeds.
type Kind int

// Transport kinds.
const (
	KindUnknown Kind = iota
	KindH4           // plain UART, HCI UART transport layer
	KindUSB          // USB with HCI over bulk/interrupt endpoints
	KindBCSP         // BlueCore Serial Protocol over UART
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindH4:
		return "H4-UART"
	case KindUSB:
		return "USB"
	case KindBCSP:
		return "BCSP"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Result reports one host→controller delivery attempt.
type Result struct {
	Latency sim.Time
	// Err is nil on success; otherwise a *core.SimError whose code
	// identifies the transport-level failure for the system log.
	Err error
}

// Transport carries HCI traffic between host stack and controller.
type Transport interface {
	Kind() Kind
	// Deliver carries one message of size bytes, returning the latency and
	// a transport error if the path failed.
	Deliver(size int) Result
}

// H4Config parameterises the plain-UART transport.
type H4Config struct {
	BaudRate int // bits per second, e.g. 115200
}

// H4 is the plain UART transport: no sequencing, no error recovery of its
// own; errors surface at the HCI layer instead, so Deliver never fails.
type H4 struct {
	cfg H4Config
}

var _ Transport = (*H4)(nil)

// NewH4 builds an H4 transport. A non-positive baud rate panics.
func NewH4(cfg H4Config) *H4 {
	if cfg.BaudRate <= 0 {
		panic(fmt.Sprintf("transport: bad baud rate %d", cfg.BaudRate))
	}
	return &H4{cfg: cfg}
}

// Kind reports KindH4.
func (h *H4) Kind() Kind { return KindH4 }

// Deliver models serialisation delay only (10 bits per byte on a UART).
func (h *H4) Deliver(size int) Result {
	bits := (size + 1) * 10 // +1 for the H4 packet-type indicator byte
	lat := sim.Time(int64(bits) * int64(sim.Second) / int64(h.cfg.BaudRate))
	return Result{Latency: lat}
}

// USBConfig parameterises the USB transport and its stall fault.
type USBConfig struct {
	// LatencyPerKB is the bulk-transfer time per kilobyte.
	LatencyPerKB sim.Time
	// StallProb is the per-delivery probability that the device refuses to
	// accept new addresses (the Table 1 "USB" system failure). A stall
	// persists for StallDuration: deliveries during it keep failing, which
	// is what lets several user-level failures coalesce onto one USB error
	// burst in the logs.
	StallProb     float64
	StallDuration sim.Time
}

// DefaultUSBConfig returns calibrated USB parameters.
func DefaultUSBConfig() USBConfig {
	return USBConfig{
		LatencyPerKB:  400 * sim.Microsecond,
		StallProb:     2e-5,
		StallDuration: 4 * sim.Second,
	}
}

// USB is the USB host transport with its address-stall fault.
type USB struct {
	cfg        USBConfig
	clock      func() sim.Time
	rng        *rand.Rand
	node       string
	stallUntil sim.Time
	stalls     int
}

var _ Transport = (*USB)(nil)

// NewUSB builds a USB transport; clock supplies the current virtual time
// (usually world.Now).
func NewUSB(cfg USBConfig, node string, clock func() sim.Time, rng *rand.Rand) *USB {
	if cfg.StallProb < 0 || cfg.StallProb > 1 {
		panic(fmt.Sprintf("transport: stall probability %v out of range", cfg.StallProb))
	}
	return &USB{cfg: cfg, clock: clock, rng: rng, node: node}
}

// Kind reports KindUSB.
func (u *USB) Kind() Kind { return KindUSB }

// Stalls reports how many stall episodes have begun, for tests.
func (u *USB) Stalls() int { return u.stalls }

// Deliver carries one message unless the device is stalled.
func (u *USB) Deliver(size int) Result {
	now := u.clock()
	if now < u.stallUntil {
		return Result{
			Latency: sim.Millisecond,
			Err:     core.NewSimError(core.CodeUSBAddressStall, "usb.deliver", u.node),
		}
	}
	if u.cfg.StallProb > 0 && u.rng.Float64() < u.cfg.StallProb {
		u.stalls++
		u.stallUntil = now + u.cfg.StallDuration
		return Result{
			Latency: sim.Millisecond,
			Err:     core.NewSimError(core.CodeUSBAddressStall, "usb.deliver", u.node),
		}
	}
	kb := int64(size+1023) / 1024
	if kb < 1 {
		kb = 1
	}
	return Result{Latency: sim.Time(kb * int64(u.cfg.LatencyPerKB))}
}
