package transport

import (
	"errors"
	"fmt"

	"repro/internal/baseband"
)

// BCSP frame layout (BlueCore Serial Protocol, CSR AN004):
//
//	octet 0: flags (bit7 reliable, bit6 CRC present) | seq (bits 3-5) | ack (bits 0-2)
//	octet 1: payload length low nibble (bits 4-7) | protocol channel id (bits 0-3)
//	octet 2: payload length high octet
//	octet 3: header checksum = two's complement of (octet0+octet1+octet2)
//	payload...
//	optional CRC-16 over header+payload
//
// Frames travel SLIP-framed between 0xC0 delimiters with 0xC0 -> 0xDB 0xDC
// and 0xDB -> 0xDB 0xDD escaping.

// BCSP protocol channel identifiers (the "parallel information flows" the
// paper mentions BCSP multiplexes over a single UART).
const (
	ChanAck     = 0x0
	ChanLinkEst = 0x1
	ChanHCICmd  = 0x5
	ChanHCIACL  = 0x6
	ChanHCISCO  = 0x7
)

// Frame is one BCSP datagram.
type Frame struct {
	Reliable bool
	HasCRC   bool
	Seq      uint8 // 3-bit send sequence number
	Ack      uint8 // 3-bit acknowledgement number
	Channel  uint8 // 4-bit protocol id
	Payload  []byte
}

// SLIP special bytes.
const (
	slipEnd    = 0xC0
	slipEsc    = 0xDB
	slipEscEnd = 0xDC
	slipEscEsc = 0xDD
)

// maxBCSPPayload is the 12-bit payload length bound of the frame header.
const maxBCSPPayload = 0xFFF

// EncodeFrame serialises a frame, including SLIP delimiters.
func EncodeFrame(f Frame) ([]byte, error) {
	if f.Seq > 7 || f.Ack > 7 {
		return nil, fmt.Errorf("transport: seq/ack %d/%d exceed 3 bits", f.Seq, f.Ack)
	}
	if f.Channel > 15 {
		return nil, fmt.Errorf("transport: channel %d exceeds 4 bits", f.Channel)
	}
	if len(f.Payload) > maxBCSPPayload {
		return nil, fmt.Errorf("transport: payload %dB exceeds BCSP bound", len(f.Payload))
	}
	hdr := make([]byte, 4)
	if f.Reliable {
		hdr[0] |= 0x80
	}
	if f.HasCRC {
		hdr[0] |= 0x40
	}
	hdr[0] |= (f.Seq & 7) << 3
	hdr[0] |= f.Ack & 7
	hdr[1] = byte(len(f.Payload)&0xF)<<4 | f.Channel&0xF
	hdr[2] = byte(len(f.Payload) >> 4)
	hdr[3] = byte(-(int(hdr[0]) + int(hdr[1]) + int(hdr[2])))

	raw := append(hdr, f.Payload...)
	if f.HasCRC {
		crc := baseband.CRC16(0xFFFF, raw)
		raw = append(raw, byte(crc>>8), byte(crc))
	}

	out := make([]byte, 0, len(raw)+8)
	out = append(out, slipEnd)
	for _, b := range raw {
		switch b {
		case slipEnd:
			out = append(out, slipEsc, slipEscEnd)
		case slipEsc:
			out = append(out, slipEsc, slipEscEsc)
		default:
			out = append(out, b)
		}
	}
	out = append(out, slipEnd)
	return out, nil
}

// Frame decoding errors.
var (
	ErrBadFraming  = errors.New("transport: bad SLIP framing")
	ErrBadChecksum = errors.New("transport: BCSP header checksum mismatch")
	ErrBadCRC      = errors.New("transport: BCSP payload CRC mismatch")
	ErrShortFrame  = errors.New("transport: BCSP frame too short")
)

// DecodeFrame parses one SLIP-delimited frame produced by EncodeFrame.
func DecodeFrame(wire []byte) (Frame, error) {
	if len(wire) < 2 || wire[0] != slipEnd || wire[len(wire)-1] != slipEnd {
		return Frame{}, ErrBadFraming
	}
	raw := make([]byte, 0, len(wire)-2)
	for i := 1; i < len(wire)-1; i++ {
		b := wire[i]
		if b == slipEsc {
			i++
			if i >= len(wire)-1 {
				return Frame{}, ErrBadFraming
			}
			switch wire[i] {
			case slipEscEnd:
				raw = append(raw, slipEnd)
			case slipEscEsc:
				raw = append(raw, slipEsc)
			default:
				return Frame{}, ErrBadFraming
			}
			continue
		}
		raw = append(raw, b)
	}
	if len(raw) < 4 {
		return Frame{}, ErrShortFrame
	}
	if byte(int(raw[0])+int(raw[1])+int(raw[2])+int(raw[3])) != 0 {
		return Frame{}, ErrBadChecksum
	}
	f := Frame{
		Reliable: raw[0]&0x80 != 0,
		HasCRC:   raw[0]&0x40 != 0,
		Seq:      raw[0] >> 3 & 7,
		Ack:      raw[0] & 7,
		Channel:  raw[1] & 0xF,
	}
	plen := int(raw[1]>>4) | int(raw[2])<<4
	body := raw[4:]
	if f.HasCRC {
		if len(body) < plen+2 {
			return Frame{}, ErrShortFrame
		}
		crcWire := uint16(body[plen])<<8 | uint16(body[plen+1])
		if baseband.CRC16(0xFFFF, raw[:4+plen]) != crcWire {
			return Frame{}, ErrBadCRC
		}
		body = body[:plen]
	} else if len(body) < plen {
		return Frame{}, ErrShortFrame
	} else {
		body = body[:plen]
	}
	f.Payload = append([]byte(nil), body...)
	return f, nil
}

// LinkEvent is what the BCSP receiver reports to its observer.
type LinkEvent int

// Receiver events.
const (
	EvDelivered  LinkEvent = iota + 1 // in-order reliable payload delivered
	EvOutOfOrder                      // unexpected sequence number observed
	EvDuplicate                       // already-acknowledged frame re-seen
	EvCorrupt                         // frame failed checksum/CRC
)

// String names the event.
func (e LinkEvent) String() string {
	switch e {
	case EvDelivered:
		return "delivered"
	case EvOutOfOrder:
		return "out-of-order"
	case EvDuplicate:
		return "duplicate"
	case EvCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("LinkEvent(%d)", int(e))
	}
}

// Receiver is the receive half of a BCSP reliable link: it tracks the
// expected 3-bit sequence number and classifies arriving frames. The
// classification events feed the system log ("Out of order or missing BCSP
// packets").
type Receiver struct {
	expect    uint8
	delivered [][]byte
	events    []LinkEvent
}

// Accept processes one wire frame and returns the event classification.
func (r *Receiver) Accept(wire []byte) LinkEvent {
	f, err := DecodeFrame(wire)
	ev := EvCorrupt
	if err == nil {
		switch {
		case !f.Reliable:
			ev = EvDelivered // unreliable channel: no sequencing
		case f.Seq == r.expect:
			ev = EvDelivered
			r.expect = (r.expect + 1) & 7
		case ((r.expect - f.Seq) & 7) <= 3:
			// Behind the window: a retransmission of something acked.
			ev = EvDuplicate
		default:
			ev = EvOutOfOrder
		}
	}
	if ev == EvDelivered && err == nil {
		r.delivered = append(r.delivered, f.Payload)
	}
	r.events = append(r.events, ev)
	return ev
}

// Expected reports the next expected reliable sequence number.
func (r *Receiver) Expected() uint8 { return r.expect }

// Delivered returns the in-order reliable payload sequence so far.
func (r *Receiver) Delivered() [][]byte { return r.delivered }

// Events returns the classification history.
func (r *Receiver) Events() []LinkEvent { return r.events }
