package transport

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sim"
)

func testRNG(a uint64) *rand.Rand { return rand.New(rand.NewPCG(a, a^0x9E3779B97F4A7C15)) }

func TestH4Latency(t *testing.T) {
	h := NewH4(H4Config{BaudRate: 115200})
	if h.Kind() != KindH4 {
		t.Error("wrong kind")
	}
	res := h.Deliver(115199 / 10)
	if res.Err != nil {
		t.Fatalf("H4 should not fail: %v", res.Err)
	}
	if res.Latency <= 0 || res.Latency > sim.Second {
		t.Errorf("latency %v out of plausible range", res.Latency)
	}
	// Bigger messages take longer.
	if h.Deliver(1000).Latency <= h.Deliver(10).Latency {
		t.Error("latency should grow with size")
	}
}

func TestNewH4PanicsOnBadBaud(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewH4(H4Config{})
}

func TestUSBStall(t *testing.T) {
	var now sim.Time
	cfg := DefaultUSBConfig()
	cfg.StallProb = 1 // always stall
	u := NewUSB(cfg, "Win", func() sim.Time { return now }, testRNG(1))
	res := u.Deliver(64)
	if res.Err == nil {
		t.Fatal("expected stall error")
	}
	var se *core.SimError
	if !errors.As(res.Err, &se) || se.Code != core.CodeUSBAddressStall {
		t.Fatalf("wrong error: %v", res.Err)
	}
	if u.Stalls() != 1 {
		t.Errorf("Stalls = %d, want 1", u.Stalls())
	}
	// While stalled, further deliveries fail without new stall episodes.
	cfg2 := cfg
	_ = cfg2
	now += sim.Second
	if res := u.Deliver(64); res.Err == nil {
		t.Error("delivery during stall should fail")
	}
	if u.Stalls() != 1 {
		t.Errorf("Stalls = %d after in-stall delivery, want 1", u.Stalls())
	}
	// After the stall window, deliveries recover (set prob to 0 first).
	now += cfg.StallDuration
}

func TestUSBCleanDelivery(t *testing.T) {
	cfg := DefaultUSBConfig()
	cfg.StallProb = 0
	var now sim.Time
	u := NewUSB(cfg, "Win", func() sim.Time { return now }, testRNG(2))
	res := u.Deliver(2048)
	if res.Err != nil {
		t.Fatalf("unexpected error: %v", res.Err)
	}
	if res.Latency != 2*cfg.LatencyPerKB {
		t.Errorf("latency = %v, want %v", res.Latency, 2*cfg.LatencyPerKB)
	}
	if u.Kind() != KindUSB {
		t.Error("wrong kind")
	}
}

func TestBCSPFrameRoundTrip(t *testing.T) {
	prop := func(reliable, hasCRC bool, seq, ack, channel uint8, payload []byte) bool {
		f := Frame{
			Reliable: reliable, HasCRC: hasCRC,
			Seq: seq & 7, Ack: ack & 7, Channel: channel & 0xF,
			Payload: payload,
		}
		if len(f.Payload) > maxBCSPPayload {
			f.Payload = f.Payload[:maxBCSPPayload]
		}
		wire, err := EncodeFrame(f)
		if err != nil {
			return false
		}
		got, err := DecodeFrame(wire)
		if err != nil {
			return false
		}
		if got.Payload == nil {
			got.Payload = []byte{}
		}
		want := f.Payload
		if want == nil {
			want = []byte{}
		}
		return got.Reliable == f.Reliable && got.HasCRC == f.HasCRC &&
			got.Seq == f.Seq && got.Ack == f.Ack && got.Channel == f.Channel &&
			bytes.Equal(got.Payload, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBCSPFrameEscaping(t *testing.T) {
	f := Frame{Reliable: true, HasCRC: true, Seq: 1, Channel: ChanHCIACL,
		Payload: []byte{slipEnd, slipEsc, slipEnd, 0x00, 0xFF}}
	wire, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	// No raw 0xC0 may appear between the delimiters.
	for _, b := range wire[1 : len(wire)-1] {
		if b == slipEnd {
			t.Fatal("unescaped SLIP END inside frame")
		}
	}
	got, err := DecodeFrame(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("payload = %x, want %x", got.Payload, f.Payload)
	}
}

func TestBCSPFrameValidation(t *testing.T) {
	if _, err := EncodeFrame(Frame{Seq: 8}); err == nil {
		t.Error("seq 8 should fail")
	}
	if _, err := EncodeFrame(Frame{Channel: 16}); err == nil {
		t.Error("channel 16 should fail")
	}
	if _, err := EncodeFrame(Frame{Payload: make([]byte, maxBCSPPayload+1)}); err == nil {
		t.Error("oversized payload should fail")
	}
}

func TestBCSPDecodeRejectsCorruption(t *testing.T) {
	wire, err := EncodeFrame(Frame{Reliable: true, HasCRC: true, Seq: 2,
		Channel: ChanHCICmd, Payload: []byte("abcdef")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFrame(wire[1:]); !errors.Is(err, ErrBadFraming) {
		t.Errorf("missing delimiter: %v", err)
	}
	mut := append([]byte(nil), wire...)
	mut[1] ^= 0x01 // corrupt header
	if _, err := DecodeFrame(mut); err == nil {
		t.Error("corrupt header accepted")
	}
	mut = append([]byte(nil), wire...)
	mut[len(mut)-3] ^= 0x40 // corrupt CRC area / payload
	if _, err := DecodeFrame(mut); err == nil {
		t.Error("corrupt payload accepted")
	}
}

func TestReceiverSequencing(t *testing.T) {
	mk := func(seq uint8, reliable bool) []byte {
		wire, err := EncodeFrame(Frame{Reliable: reliable, HasCRC: true,
			Seq: seq, Channel: ChanHCICmd, Payload: []byte{seq}})
		if err != nil {
			t.Fatal(err)
		}
		return wire
	}
	var rx Receiver
	if ev := rx.Accept(mk(0, true)); ev != EvDelivered {
		t.Fatalf("in-order frame: %v", ev)
	}
	if ev := rx.Accept(mk(1, true)); ev != EvDelivered {
		t.Fatalf("in-order frame: %v", ev)
	}
	// Re-send of an acked frame: duplicate.
	if ev := rx.Accept(mk(1, true)); ev != EvDuplicate {
		t.Fatalf("retransmission: %v", ev)
	}
	// Skipping ahead: out of order.
	if ev := rx.Accept(mk(6, true)); ev != EvOutOfOrder {
		t.Fatalf("skip ahead: %v", ev)
	}
	// Unreliable frames bypass sequencing.
	if ev := rx.Accept(mk(7, false)); ev != EvDelivered {
		t.Fatalf("unreliable frame: %v", ev)
	}
	// Corrupt wire.
	if ev := rx.Accept([]byte{0x01, 0x02}); ev != EvCorrupt {
		t.Fatalf("garbage: %v", ev)
	}
	if got := len(rx.Delivered()); got != 3 {
		t.Errorf("delivered %d payloads, want 3", got)
	}
	if rx.Expected() != 2 {
		t.Errorf("expected seq = %d, want 2", rx.Expected())
	}
	if len(rx.Events()) != 6 {
		t.Errorf("%d events recorded, want 6", len(rx.Events()))
	}
}

func TestBCSPSimCleanPath(t *testing.T) {
	cfg := DefaultBCSPConfig()
	cfg.ReorderProb, cfg.MissingProb = 0, 0
	b := NewBCSPSim(cfg, "Ipaq", testRNG(3))
	for i := 0; i < 1000; i++ {
		if res := b.Deliver(32); res.Err != nil {
			t.Fatalf("clean BCSP failed: %v", res.Err)
		}
	}
	if r, l := b.Faults(); r != 0 || l != 0 {
		t.Errorf("faults = %d/%d, want 0/0", r, l)
	}
	if b.Kind() != KindBCSP {
		t.Error("wrong kind")
	}
}

func TestBCSPSimReorderFault(t *testing.T) {
	cfg := DefaultBCSPConfig()
	cfg.ReorderProb = 1
	cfg.RecoverProb = 0
	b := NewBCSPSim(cfg, "Zaurus", testRNG(4))
	res := b.Deliver(16)
	if res.Err == nil {
		t.Fatal("expected out-of-order error")
	}
	var se *core.SimError
	if !errors.As(res.Err, &se) || se.Code != core.CodeBCSPOutOfOrder {
		t.Fatalf("wrong error: %v", res.Err)
	}
	if res.Latency < cfg.RetransmitDelay {
		t.Error("fault should add retransmission latency")
	}
}

func TestBCSPSimReorderRecovery(t *testing.T) {
	cfg := DefaultBCSPConfig()
	cfg.ReorderProb = 1
	cfg.RecoverProb = 1
	b := NewBCSPSim(cfg, "Zaurus", testRNG(5))
	for i := 0; i < 16; i++ {
		if res := b.Deliver(16); res.Err != nil {
			t.Fatalf("recoverable reorder surfaced an error: %v", res.Err)
		}
	}
	if r, _ := b.Faults(); r != 16 {
		t.Errorf("reorders = %d, want 16", r)
	}
}

func TestBCSPSimMissingFault(t *testing.T) {
	cfg := DefaultBCSPConfig()
	cfg.ReorderProb = 0
	cfg.MissingProb = 1
	cfg.RecoverProb = 0
	b := NewBCSPSim(cfg, "Ipaq", testRNG(6))
	res := b.Deliver(16)
	var se *core.SimError
	if !errors.As(res.Err, &se) || se.Code != core.CodeBCSPMissing {
		t.Fatalf("wrong error: %v", res.Err)
	}
}

func TestBCSPSimFaultRatesApproximateConfig(t *testing.T) {
	cfg := DefaultBCSPConfig()
	cfg.ReorderProb = 0.01
	cfg.MissingProb = 0.005
	cfg.RecoverProb = 0
	b := NewBCSPSim(cfg, "Ipaq", testRNG(7))
	fails := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if res := b.Deliver(16); res.Err != nil {
			fails++
		}
	}
	got := float64(fails) / n
	want := cfg.ReorderProb + cfg.MissingProb
	if got < want*0.8 || got > want*1.2 {
		t.Errorf("fault rate = %v, want ~%v", got, want)
	}
}
