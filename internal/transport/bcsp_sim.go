package transport

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/sim"
)

// BCSPConfig parameterises the simulated BCSP link.
type BCSPConfig struct {
	BaudRate int // UART speed under the BCSP framing

	// ReorderProb is the per-delivery probability that frames arrive out of
	// order (UART glitches under load on the PDAs); MissingProb the
	// probability a frame vanishes entirely.
	ReorderProb float64
	MissingProb float64

	// RecoverProb is the probability that the link engine's retransmission
	// recovers the exchange transparently (extra latency only); otherwise
	// the in-flight HCI exchange is corrupted and the delivery fails.
	RecoverProb float64

	// RetransmitDelay is the latency penalty of one recovery round.
	RetransmitDelay sim.Time
}

// DefaultBCSPConfig returns calibrated parameters for the PDA links.
func DefaultBCSPConfig() BCSPConfig {
	return BCSPConfig{
		BaudRate:        115200,
		ReorderProb:     3e-5,
		MissingProb:     1e-5,
		RecoverProb:     0.55,
		RetransmitDelay: 250 * sim.Millisecond,
	}
}

// Validate reports configuration errors.
func (c BCSPConfig) Validate() error {
	switch {
	case c.BaudRate <= 0:
		return fmt.Errorf("transport: bad BCSP baud rate %d", c.BaudRate)
	case c.ReorderProb < 0 || c.ReorderProb > 1 || c.MissingProb < 0 || c.MissingProb > 1:
		return fmt.Errorf("transport: BCSP fault probabilities out of range")
	case c.RecoverProb < 0 || c.RecoverProb > 1:
		return fmt.Errorf("transport: BCSP recover probability out of range")
	default:
		return nil
	}
}

// BCSPSim is the simulation-facing BCSP transport. The framing codec and
// receiver state machine are the real implementations from bcsp.go; on each
// injected fault the adapter builds the actual frame sequence (swapped or
// gapped), runs it through a Receiver, and converts the observed link event
// into the system-log error code — so the classification logic stays honest.
type BCSPSim struct {
	cfg  BCSPConfig
	node string
	rng  *rand.Rand

	seq      uint8
	reorders int
	losses   int
}

var _ Transport = (*BCSPSim)(nil)

// NewBCSPSim builds the simulated BCSP transport.
func NewBCSPSim(cfg BCSPConfig, node string, rng *rand.Rand) *BCSPSim {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &BCSPSim{cfg: cfg, node: node, rng: rng}
}

// Kind reports KindBCSP.
func (b *BCSPSim) Kind() Kind { return KindBCSP }

// Faults reports the fault counters, for tests.
func (b *BCSPSim) Faults() (reorders, losses int) { return b.reorders, b.losses }

// Deliver carries one HCI message over the BCSP reliable channel.
func (b *BCSPSim) Deliver(size int) Result {
	// BCSP adds 4 header + 2 CRC bytes plus SLIP overhead (~3%).
	bits := (size + 6) * 10
	lat := sim.Time(int64(bits) * int64(sim.Second) / int64(b.cfg.BaudRate))

	u := b.rng.Float64()
	switch {
	case u < b.cfg.ReorderProb:
		b.reorders++
		ev := b.replayFault(true)
		if ev != EvOutOfOrder {
			// The real receiver must classify a swap as out-of-order;
			// anything else is a codec bug.
			panic(fmt.Sprintf("transport: swap classified as %v", ev))
		}
		if b.rng.Float64() < b.cfg.RecoverProb {
			return Result{Latency: lat + b.cfg.RetransmitDelay}
		}
		return Result{
			Latency: lat + b.cfg.RetransmitDelay,
			Err:     core.NewSimError(core.CodeBCSPOutOfOrder, "bcsp.deliver", b.node),
		}
	case u < b.cfg.ReorderProb+b.cfg.MissingProb:
		b.losses++
		if b.rng.Float64() < b.cfg.RecoverProb {
			return Result{Latency: lat + b.cfg.RetransmitDelay}
		}
		return Result{
			Latency: lat + b.cfg.RetransmitDelay,
			Err:     core.NewSimError(core.CodeBCSPMissing, "bcsp.deliver", b.node),
		}
	default:
		b.seq = (b.seq + 1) & 7
		return Result{Latency: lat}
	}
}

// replayFault constructs the faulty frame sequence with the real codec and
// runs it through a fresh Receiver synchronised to the link's state,
// returning the first anomalous event.
func (b *BCSPSim) replayFault(swap bool) LinkEvent {
	mk := func(seq uint8) []byte {
		wire, err := EncodeFrame(Frame{
			Reliable: true, HasCRC: true, Seq: seq & 7,
			Channel: ChanHCICmd, Payload: []byte{0x01, seq},
		})
		if err != nil {
			panic(err)
		}
		return wire
	}
	var rx Receiver
	// Synchronise the receiver to expect b.seq.
	for s := uint8(0); s != b.seq&7; s = (s + 1) & 7 {
		rx.Accept(mk(s))
	}
	if swap {
		// Frame n+1 arrives before frame n.
		ev := rx.Accept(mk(b.seq + 1))
		rx.Accept(mk(b.seq))
		b.seq = (b.seq + 2) & 7
		return ev
	}
	b.seq = (b.seq + 1) & 7
	return EvOutOfOrder
}
