// Package testbed assembles and runs the paper's experimental setup: two
// heterogeneous 7-node piconets (one driven by the Random workload, one by
// the Realistic workload) that operated 24/7 from June 2004, plus the
// special fixed-length experiment of Figure 3b (two machines, two months).
//
// A testbed owns its simulation world, its hosts (built from the device
// catalogue), per-node Test/System logs, and one BlueTest client per PANU.
// Campaigns run both testbeds for a virtual duration and gather every log
// into a Results bundle that the coalescence/analysis pipeline consumes.
// The mid-campaign hardware replacement of the paper (both testbeds were
// swapped for identically configured ones to reduce aging) is modelled as a
// scheduled maintenance reboot of every node.
package testbed

import (
	"fmt"
	"sync"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/logging"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

// Options configures one testbed.
type Options struct {
	// Name labels the testbed ("random", "realistic", "fixed").
	Name string
	// Seed roots the testbed's deterministic randomness.
	Seed uint64
	// Kind selects the workload.
	Kind core.WorkloadKind
	// Scenario selects the recovery regime (Table 4 column).
	Scenario recovery.Scenario
	// Nodes optionally restricts the PANUs (the fixed workload ran on Verde
	// and Win only). Empty means all six.
	Nodes []string
	// MutateHost lets callers adjust per-host configurations (used by
	// calibration tests). Called for every host including the NAP.
	MutateHost func(name string, cfg *stack.Config)
	// MutateWorkload adjusts the workload configuration per client.
	MutateWorkload func(node string, cfg *workload.Config)
	// ReplaceHardwareAt schedules the mid-campaign hardware replacement
	// (0 disables it).
	ReplaceHardwareAt sim.Time
}

// Testbed is one live 7-node piconet.
type Testbed struct {
	Name     string
	World    *sim.World
	NAP      *stack.Host
	PANUs    []*stack.Host
	Clients  []*workload.Client
	TestLogs map[string]*logging.TestLog
	SysLogs  map[string]*logging.SystemLog

	opts   Options
	connID uint64
}

// New assembles a testbed from the device catalogue.
func New(opts Options) (*Testbed, error) {
	if opts.Name == "" {
		return nil, fmt.Errorf("testbed: no name")
	}
	if opts.Kind == core.WLUnknown {
		return nil, fmt.Errorf("testbed: no workload kind")
	}
	tb := &Testbed{
		Name:     opts.Name,
		World:    sim.NewWorld(opts.Seed),
		TestLogs: make(map[string]*logging.TestLog),
		SysLogs:  make(map[string]*logging.SystemLog),
		opts:     opts,
	}
	clock := func() sim.Time { return tb.World.Now() }

	wanted := map[string]bool{}
	for _, n := range opts.Nodes {
		wanted[n] = true
	}

	for _, spec := range device.Catalog() {
		if !spec.IsNAP && len(wanted) > 0 && !wanted[spec.Name] {
			continue
		}
		sys := logging.NewSystemLog(spec.Name)
		tb.SysLogs[spec.Name] = sys
		cfg := spec.HostConfig()
		if opts.MutateHost != nil {
			opts.MutateHost(spec.Name, &cfg)
		}
		host := stack.NewHost(cfg, tb.World, spec.Name, spec.OS, spec.DistanceM,
			spec.IsPDA, spec.IsNAP, spec.BuildTransport(tb.World), &tb.connID,
			sys.Sink(opts.Name, clock, nil))
		if spec.IsNAP {
			tb.NAP = host
			continue
		}
		tb.PANUs = append(tb.PANUs, host)
		tb.TestLogs[spec.Name] = logging.NewTestLog(spec.Name)
	}
	if tb.NAP == nil {
		return nil, fmt.Errorf("testbed: catalogue has no NAP")
	}
	if len(tb.PANUs) == 0 {
		return nil, fmt.Errorf("testbed: no PANUs selected")
	}

	for _, host := range tb.PANUs {
		wcfg := workloadConfig(opts, host.Node)
		if opts.MutateWorkload != nil {
			opts.MutateWorkload(host.Node, &wcfg)
		}
		client := workload.NewClient(wcfg, tb.World, host, tb.NAP, tb.TestLogs[host.Node])
		tb.Clients = append(tb.Clients, client)
	}
	return tb, nil
}

// workloadConfig picks the per-kind default.
func workloadConfig(opts Options, node string) workload.Config {
	switch opts.Kind {
	case core.WLRealistic:
		return workload.DefaultRealistic(opts.Name, opts.Scenario)
	case core.WLFixed:
		return workload.DefaultFixed(opts.Name, opts.Scenario)
	default:
		return workload.DefaultRandom(opts.Name, opts.Scenario)
	}
}

// Run starts every client and advances the world to the horizon.
func (tb *Testbed) Run(duration sim.Time) {
	for _, c := range tb.Clients {
		c.Start()
	}
	if at := tb.opts.ReplaceHardwareAt; at > 0 && at < duration {
		tb.World.At(at, tb.replaceHardware)
	}
	tb.World.RunUntil(duration)
}

// replaceHardware models the paper's mid-campaign testbed swap: every node
// gets fresh hardware with identical configuration (a maintenance reboot;
// no failure data is produced).
func (tb *Testbed) replaceHardware() {
	tb.NAP.ResetStack()
	for _, h := range tb.PANUs {
		h.Reboot()
	}
}

// Ingestor consumes a testbed's periodic log drains: each call delivers one
// node's next time-ordered records with a watermark promising that all of
// the node's data up to that virtual instant has been delivered. The local
// streaming aggregator (*analysis.Streamer) satisfies it, and so does the
// distributed plane's uplink (collector.Agent) — a testbed streams to either
// without knowing whether the aggregation happens in-process or behind a
// TCP session.
type Ingestor interface {
	Ingest(testbed, node string, reports []core.UserReport,
		entries []core.SystemEntry, watermark sim.Time) error
}

// SpecEntry describes this testbed's streams for a streaming aggregator.
func (tb *Testbed) SpecEntry() analysis.TestbedSpec {
	spec := analysis.TestbedSpec{Name: tb.Name, Kind: tb.opts.Kind, NAP: tb.NAP.Node}
	for _, h := range tb.PANUs {
		spec.PANUs = append(spec.PANUs, h.Node)
	}
	return spec
}

// StreamTo arms the testbed's streaming collection: every `every` of
// virtual time, each node's Test/System logs are drained into s with the
// current instant as the stream watermark, so the logs never accumulate a
// campaign's worth of records. Call before Run; pair with a FinishStream
// after Run to ship the tail.
func (tb *Testbed) StreamTo(s Ingestor, every sim.Time) {
	if every <= 0 {
		panic(fmt.Sprintf("testbed: non-positive stream flush interval %v", every))
	}
	var tick func()
	tick = func() {
		tb.drainTo(s)
		tb.World.At(tb.World.Now()+every, tick)
	}
	tb.World.At(every, tick)
}

// FinishStream ships whatever the logs still hold after the horizon.
func (tb *Testbed) FinishStream(s Ingestor) {
	tb.drainTo(s)
}

// drainTo ships every node's current log contents with watermark = now.
func (tb *Testbed) drainTo(s Ingestor) {
	now := tb.World.Now()
	for _, h := range tb.PANUs {
		if err := s.Ingest(tb.Name, h.Node, tb.TestLogs[h.Node].Drain(),
			tb.SysLogs[h.Node].Drain(), now); err != nil {
			panic(err) // spec mismatch: programming error, not data error
		}
	}
	if err := s.Ingest(tb.Name, tb.NAP.Node, nil, tb.SysLogs[tb.NAP.Node].Drain(), now); err != nil {
		panic(err)
	}
}

// Results bundles a finished testbed's data for analysis.
type Results struct {
	Name     string
	Duration sim.Time
	NAPNode  string
	// Reports holds every user-level report (including masked ones).
	Reports []core.UserReport
	// Entries holds every system-level entry from all nodes.
	Entries []core.SystemEntry
	// PerNodeReports/PerNodeEntries keep per-node views for the
	// coalescence pipeline.
	PerNodeReports map[string][]core.UserReport
	PerNodeEntries map[string][]core.SystemEntry
	// Counters keeps the per-client counters.
	Counters map[string]*workload.Counters
}

// Results gathers the testbed's data after Run.
func (tb *Testbed) Results() *Results {
	res := &Results{
		Name:           tb.Name,
		Duration:       tb.World.Now(),
		NAPNode:        tb.NAP.Node,
		PerNodeReports: make(map[string][]core.UserReport),
		PerNodeEntries: make(map[string][]core.SystemEntry),
		Counters:       make(map[string]*workload.Counters),
	}
	for node, log := range tb.TestLogs {
		reports := log.Snapshot()
		res.PerNodeReports[node] = reports
		res.Reports = append(res.Reports, reports...)
	}
	for node, log := range tb.SysLogs {
		entries := log.Snapshot()
		res.PerNodeEntries[node] = entries
		res.Entries = append(res.Entries, entries...)
	}
	logging.SortUserReports(res.Reports)
	logging.SortSystemEntries(res.Entries)
	for _, c := range tb.Clients {
		res.Counters[c.Node()] = c.Counters()
	}
	return res
}

// Campaign runs the paper's two testbeds.
type Campaign struct {
	Random    *Testbed
	Realistic *Testbed
}

// CampaignOptions returns the two testbed Options a campaign of the given
// seed and scenario is built from, with the mid-campaign hardware
// replacement scheduled at duration/2 (pass 0 to defer that to the
// campaign's Run). The distributed plane's agents build exactly one of the
// two, which is what makes a testbed shard in its own OS process
// bit-identical to the same testbed inside a single-process campaign.
func CampaignOptions(seed uint64, scenario recovery.Scenario, duration sim.Time) (random, realistic Options) {
	random = Options{
		Name: "random", Seed: seed ^ 0x72616E64, Kind: core.WLRandom,
		Scenario: scenario, ReplaceHardwareAt: duration / 2,
	}
	realistic = Options{
		Name: "realistic", Seed: seed ^ 0x7265616C, Kind: core.WLRealistic,
		Scenario: scenario, ReplaceHardwareAt: duration / 2,
	}
	return random, realistic
}

// CampaignStreamSpec declares the standard two-testbed campaign's streams
// from the device catalogue alone — what a collection sink needs to host
// the streaming aggregator without building any hosts. It is exactly
// Campaign.StreamSpec for a freshly built campaign (pinned by test).
func CampaignStreamSpec() analysis.StreamSpec {
	var nap string
	var panus []string
	for _, spec := range device.Catalog() {
		if spec.IsNAP {
			nap = spec.Name
			continue
		}
		panus = append(panus, spec.Name)
	}
	return analysis.StreamSpec{Testbeds: []analysis.TestbedSpec{
		{Name: "random", Kind: core.WLRandom, NAP: nap, PANUs: panus},
		{Name: "realistic", Kind: core.WLRealistic, NAP: nap, PANUs: panus},
	}}
}

// NewCampaign builds both testbeds with derived seeds.
func NewCampaign(seed uint64, scenario recovery.Scenario,
	mutateHost func(name string, cfg *stack.Config)) (*Campaign, error) {
	randomOpts, realisticOpts := CampaignOptions(seed, scenario, 0)
	randomOpts.MutateHost = mutateHost
	realisticOpts.MutateHost = mutateHost
	random, err := New(randomOpts)
	if err != nil {
		return nil, err
	}
	realistic, err := New(realisticOpts)
	if err != nil {
		return nil, err
	}
	return &Campaign{Random: random, Realistic: realistic}, nil
}

// Run drives both testbeds for the duration (with the hardware replacement
// at the midpoint, as in the paper) and returns their results. The two
// testbeds are fully independent simulations — each owns its kernel, RNG
// rig, hosts and logs — so they run on separate goroutines; per-seed
// determinism is untouched because no state crosses the boundary until both
// have finished. Use RunSequential to force single-threaded execution.
func (c *Campaign) Run(duration sim.Time) (randomRes, realisticRes *Results) {
	c.Random.opts.ReplaceHardwareAt = duration / 2
	c.Realistic.opts.ReplaceHardwareAt = duration / 2
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Random.Run(duration)
	}()
	c.Realistic.Run(duration)
	wg.Wait()
	return c.Random.Results(), c.Realistic.Results()
}

// RunSequential is Run on a single goroutine (the Parallelism <= 1 path of
// campaign configs); it produces results identical to Run.
func (c *Campaign) RunSequential(duration sim.Time) (randomRes, realisticRes *Results) {
	c.Random.opts.ReplaceHardwareAt = duration / 2
	c.Realistic.opts.ReplaceHardwareAt = duration / 2
	c.Random.Run(duration)
	c.Realistic.Run(duration)
	return c.Random.Results(), c.Realistic.Results()
}

// StreamSpec builds the streaming-aggregator spec covering both testbeds,
// random first (the fold tie-break rank mirrors the retained pipeline's
// random-block-then-realistic-block order).
func (c *Campaign) StreamSpec() analysis.StreamSpec {
	return analysis.StreamSpec{Testbeds: []analysis.TestbedSpec{
		c.Random.SpecEntry(), c.Realistic.SpecEntry(),
	}}
}

// RunStreaming is Run with the streaming collection plane armed: both
// testbeds periodically drain their logs into s (bounding memory by the
// flush interval instead of the campaign length), the tail is shipped after
// the horizon, and the returned Results carry only the light parts (names,
// durations, counters) — records live on in s's aggregates. The two
// testbeds still run on separate goroutines; the aggregator's watermark
// fold keeps the merged record order, and therefore every aggregate,
// bit-identical to a sequential retained run.
func (c *Campaign) RunStreaming(duration, flushEvery sim.Time, s Ingestor) (randomRes, realisticRes *Results) {
	c.Random.opts.ReplaceHardwareAt = duration / 2
	c.Realistic.opts.ReplaceHardwareAt = duration / 2
	c.Random.StreamTo(s, flushEvery)
	c.Realistic.StreamTo(s, flushEvery)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Random.Run(duration)
		c.Random.FinishStream(s)
	}()
	c.Realistic.Run(duration)
	c.Realistic.FinishStream(s)
	wg.Wait()
	return c.Random.Results(), c.Realistic.Results()
}

// RunStreamingSequential is RunStreaming on a single goroutine.
func (c *Campaign) RunStreamingSequential(duration, flushEvery sim.Time, s Ingestor) (randomRes, realisticRes *Results) {
	c.Random.opts.ReplaceHardwareAt = duration / 2
	c.Realistic.opts.ReplaceHardwareAt = duration / 2
	c.Random.StreamTo(s, flushEvery)
	c.Realistic.StreamTo(s, flushEvery)
	c.Random.Run(duration)
	c.Random.FinishStream(s)
	c.Realistic.Run(duration)
	c.Realistic.FinishStream(s)
	return c.Random.Results(), c.Realistic.Results()
}

// MergedResults combines both testbeds' data (the paper's failure model and
// Table 2/3 use data from both).
func MergedResults(a, b *Results) *Results {
	out := &Results{
		Name:           a.Name + "+" + b.Name,
		Duration:       a.Duration + b.Duration,
		NAPNode:        a.NAPNode,
		PerNodeReports: make(map[string][]core.UserReport),
		PerNodeEntries: make(map[string][]core.SystemEntry),
		Counters:       make(map[string]*workload.Counters),
	}
	for _, r := range []*Results{a, b} {
		out.Reports = append(out.Reports, r.Reports...)
		out.Entries = append(out.Entries, r.Entries...)
		for k, v := range r.PerNodeReports {
			out.PerNodeReports[r.Name+"/"+k] = v
		}
		for k, v := range r.PerNodeEntries {
			out.PerNodeEntries[r.Name+"/"+k] = v
		}
		for k, v := range r.Counters {
			out.Counters[r.Name+"/"+k] = v
		}
	}
	logging.SortUserReports(out.Reports)
	logging.SortSystemEntries(out.Entries)
	return out
}
