package testbed

import (
	"testing"

	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/stack"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("empty options accepted")
	}
	if _, err := New(Options{Name: "x"}); err == nil {
		t.Error("missing workload kind accepted")
	}
	if _, err := New(Options{Name: "x", Kind: core.WLRandom,
		Nodes: []string{"nonexistent"}}); err == nil {
		t.Error("empty PANU selection accepted")
	}
}

func TestTestbedShape(t *testing.T) {
	tb, err := New(Options{Name: "random", Seed: 1, Kind: core.WLRandom,
		Scenario: recovery.ScenarioSIRAs})
	if err != nil {
		t.Fatal(err)
	}
	if tb.NAP == nil || tb.NAP.Node != "Giallo" {
		t.Error("NAP missing")
	}
	if len(tb.PANUs) != 6 || len(tb.Clients) != 6 {
		t.Errorf("PANUs/clients = %d/%d, want 6/6", len(tb.PANUs), len(tb.Clients))
	}
	if len(tb.SysLogs) != 7 {
		t.Errorf("system logs = %d, want 7 (all nodes)", len(tb.SysLogs))
	}
	if len(tb.TestLogs) != 6 {
		t.Errorf("test logs = %d, want 6 (PANUs only)", len(tb.TestLogs))
	}
}

func TestNodeSubset(t *testing.T) {
	tb, err := New(Options{Name: "fixed", Seed: 2, Kind: core.WLFixed,
		Scenario: recovery.ScenarioSIRAs, Nodes: []string{"Verde", "Win"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.PANUs) != 2 {
		t.Fatalf("PANUs = %d, want 2", len(tb.PANUs))
	}
	names := map[string]bool{}
	for _, h := range tb.PANUs {
		names[h.Node] = true
	}
	if !names["Verde"] || !names["Win"] {
		t.Errorf("wrong nodes: %v", names)
	}
}

func TestShortCampaignProducesData(t *testing.T) {
	tb, err := New(Options{Name: "random", Seed: 3, Kind: core.WLRandom,
		Scenario: recovery.ScenarioSIRAs})
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(6 * sim.Hour)
	res := tb.Results()
	if res.Duration < 6*sim.Hour {
		t.Errorf("duration = %v", res.Duration)
	}
	totalCycles := 0
	for _, c := range res.Counters {
		totalCycles += c.Cycles
	}
	if totalCycles < 500 {
		t.Errorf("only %d cycles across 6 nodes in 6 virtual hours", totalCycles)
	}
	if len(res.Reports) == 0 {
		t.Error("no user reports with calibrated fault rates")
	}
	if len(res.Entries) == 0 {
		t.Error("no system entries")
	}
	// Reports must be time-sorted and carry the testbed name.
	for i, r := range res.Reports {
		if r.Testbed != "random" {
			t.Fatalf("report %d has testbed %q", i, r.Testbed)
		}
		if i > 0 && r.At < res.Reports[i-1].At {
			t.Fatal("reports not sorted")
		}
	}
}

func TestMutateHostHook(t *testing.T) {
	seen := map[string]bool{}
	_, err := New(Options{Name: "random", Seed: 4, Kind: core.WLRandom,
		Scenario: recovery.ScenarioSIRAs,
		MutateHost: func(name string, cfg *stack.Config) {
			seen[name] = true
		}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 7 {
		t.Errorf("mutate hook saw %d hosts, want 7", len(seen))
	}
}

func TestHardwareReplacementReboots(t *testing.T) {
	tb, err := New(Options{Name: "random", Seed: 5, Kind: core.WLRandom,
		Scenario: recovery.ScenarioSIRAs, ReplaceHardwareAt: sim.Hour})
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(2 * sim.Hour)
	for _, h := range tb.PANUs {
		if h.Reboots() == 0 {
			t.Errorf("%s never rebooted for hardware replacement", h.Node)
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	run := func() (int, int) {
		c, err := NewCampaign(42, recovery.ScenarioSIRAs, nil)
		if err != nil {
			t.Fatal(err)
		}
		randRes, realRes := c.Run(3 * sim.Hour)
		return len(randRes.Reports), len(realRes.Reports)
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Errorf("campaign not deterministic: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}

func TestMergedResults(t *testing.T) {
	c, err := NewCampaign(7, recovery.ScenarioSIRAs, nil)
	if err != nil {
		t.Fatal(err)
	}
	randRes, realRes := c.Run(2 * sim.Hour)
	merged := MergedResults(randRes, realRes)
	if len(merged.Reports) != len(randRes.Reports)+len(realRes.Reports) {
		t.Error("merged reports lost records")
	}
	if len(merged.PerNodeReports) != len(randRes.PerNodeReports)+len(realRes.PerNodeReports) {
		t.Error("merged per-node views lost nodes")
	}
	for i := 1; i < len(merged.Reports); i++ {
		if merged.Reports[i].At < merged.Reports[i-1].At {
			t.Fatal("merged reports not sorted")
		}
	}
}
