package testbed

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pan"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

// TestNAPSlaveBoundInvariant runs a busy campaign and checks the piconet
// never admits more than seven active slaves (the Bluetooth bound the PAN
// profile's role switch exists to preserve).
func TestNAPSlaveBoundInvariant(t *testing.T) {
	tb, err := New(Options{Name: "random", Seed: 61, Kind: core.WLRandom,
		Scenario: recovery.ScenarioSIRAs})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tb.Clients {
		c.Start()
	}
	violations := 0
	tb.World.Every(10*sim.Second, func() {
		if tb.NAP.NAP.ActiveSlaves() > pan.MaxSlaves {
			violations++
		}
	})
	tb.World.RunUntil(6 * sim.Hour)
	if violations > 0 {
		t.Errorf("slave bound violated %d times", violations)
	}
}

// TestScenarioFailureStreamsDiffer checks the four recovery regimes produce
// genuinely different recovery profiles over the same fault processes.
func TestScenarioFailureStreamsDiffer(t *testing.T) {
	recoveries := map[recovery.Scenario]map[core.RecoveryAction]int{}
	for _, sc := range recovery.Scenarios() {
		tb, err := New(Options{Name: "random", Seed: 62, Kind: core.WLRandom, Scenario: sc})
		if err != nil {
			t.Fatal(err)
		}
		tb.Run(12 * sim.Hour)
		actions := map[core.RecoveryAction]int{}
		for _, r := range tb.Results().Reports {
			if r.Recovered {
				actions[r.Recovery]++
			}
		}
		recoveries[sc] = actions
	}
	// Reboot-only must never use the cheap SIRAs.
	for a := core.RAIPSocketReset; a <= core.RAMultiAppRestart; a++ {
		if recoveries[recovery.ScenarioRebootOnly][a] > 0 {
			t.Errorf("reboot-only scenario used %v", a)
		}
	}
	// The SIRA cascade must use the cheap actions.
	cheap := 0
	for a := core.RAIPSocketReset; a <= core.RABTStackReset; a++ {
		cheap += recoveries[recovery.ScenarioSIRAs][a]
	}
	if cheap == 0 {
		t.Error("SIRA scenario never used a cheap action")
	}
	// App-restart scenario starts at app restart.
	if recoveries[recovery.ScenarioAppReboot][core.RAIPSocketReset] > 0 {
		t.Error("app+reboot scenario used socket reset")
	}
}

// TestReportsCarryFullContext verifies every report produced by a campaign
// has the node-status fields the paper's reports carry.
func TestReportsCarryFullContext(t *testing.T) {
	tb, err := New(Options{Name: "realistic", Seed: 63, Kind: core.WLRealistic,
		Scenario: recovery.ScenarioSIRAs})
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(12 * sim.Hour)
	res := tb.Results()
	if len(res.Reports) == 0 {
		t.Skip("no failures in this window")
	}
	nodes := map[string]bool{}
	for _, s := range []string{"Verde", "Miseno", "Azzurro", "Win", "Ipaq", "Zaurus"} {
		nodes[s] = true
	}
	for _, r := range res.Reports {
		if !nodes[r.Node] {
			t.Fatalf("report from unknown node %q", r.Node)
		}
		if !r.Failure.Valid() {
			t.Fatal("report without failure type")
		}
		if r.Workload != core.WLRealistic {
			t.Fatalf("report with workload %v", r.Workload)
		}
		if r.DistanceM != 0.5 && r.DistanceM != 5 && r.DistanceM != 7 {
			t.Fatalf("report with distance %v", r.DistanceM)
		}
		if r.At < 0 || r.At > res.Duration {
			t.Fatalf("report timestamp %v outside campaign", r.At)
		}
	}
}

// TestSystemEntriesAttributable verifies system entries always carry a valid
// source/code pair that agrees with the taxonomy.
func TestSystemEntriesAttributable(t *testing.T) {
	tb, err := New(Options{Name: "random", Seed: 64, Kind: core.WLRandom,
		Scenario: recovery.ScenarioSIRAs})
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(12 * sim.Hour)
	res := tb.Results()
	if len(res.Entries) == 0 {
		t.Skip("no system entries in this window")
	}
	for _, e := range res.Entries {
		if !e.Source.Valid() {
			t.Fatalf("entry with invalid source: %+v", e)
		}
		if e.Code.Source() != e.Source {
			t.Fatalf("entry code %v does not belong to source %v", e.Code, e.Source)
		}
	}
}

// TestMaskedScenarioSuppressesUserVisibleFailures compares the masked and
// unmasked scenarios on the same seed: the masked run must have fewer
// user-visible failures but roughly comparable underlying fault activity
// (system entries).
func TestMaskedScenarioSuppressesUserVisibleFailures(t *testing.T) {
	run := func(sc recovery.Scenario) (failures, masked, sysEntries int) {
		tb, err := New(Options{Name: "random", Seed: 65, Kind: core.WLRandom, Scenario: sc})
		if err != nil {
			t.Fatal(err)
		}
		tb.Run(2 * sim.Day)
		res := tb.Results()
		for _, r := range res.Reports {
			if r.Masked {
				masked++
			} else {
				failures++
			}
		}
		return failures, masked, len(res.Entries)
	}
	f0, m0, _ := run(recovery.ScenarioSIRAs)
	f1, m1, _ := run(recovery.ScenarioSIRAsMasking)
	if m0 != 0 {
		t.Errorf("unmasked scenario recorded %d masked events", m0)
	}
	if m1 == 0 {
		t.Error("masked scenario recorded no masked events")
	}
	if f1 >= f0 {
		t.Errorf("masking did not reduce user-visible failures: %d -> %d", f0, f1)
	}
}

// TestMutateWorkloadHook checks the per-client workload mutation plumbing.
func TestMutateWorkloadHook(t *testing.T) {
	seen := map[string]bool{}
	tb, err := New(Options{Name: "random", Seed: 66, Kind: core.WLRandom,
		Scenario: recovery.ScenarioSIRAs,
		MutateWorkload: func(node string, cfg *workload.Config) {
			seen[node] = true
		}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(tb.Clients) {
		t.Errorf("mutate hook saw %d clients, want %d", len(seen), len(tb.Clients))
	}
}

// TestHostConfigsIndependent ensures MutateHost changes one host without
// leaking into others (configs are value types).
func TestHostConfigsIndependent(t *testing.T) {
	tb, err := New(Options{Name: "random", Seed: 67, Kind: core.WLRandom,
		Scenario: recovery.ScenarioSIRAs,
		MutateHost: func(name string, cfg *stack.Config) {
			if name == "Verde" {
				cfg.LatentDefectProb = 1
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	def := stack.DefaultHostConfig(5).LatentDefectProb
	for _, h := range tb.PANUs {
		want := def
		if h.Node == "Verde" {
			want = 1
		}
		if got := h.Config().LatentDefectProb; got != want {
			t.Errorf("%s LatentDefectProb = %v, want %v", h.Node, got, want)
		}
	}
}
