// Package stack composes one complete Bluetooth host of the testbed: HCI,
// L2CAP, SDP, BNEP and PAN layers over a transport, the OS model with its
// hotplug/HAL daemon, the IP socket layer whose bind() races interface
// configuration, and the data-plane pipe that carries BlueTest transfers.
//
// The package owns two of the paper's failure mechanisms end to end:
//
//   - "Bind failed": the PAN-connect API is not synchronous with T_C (L2CAP
//     handle validity) and T_H (BNEP interface configuration by hotplug), so
//     an immediate bind races both intervals. Hosts carrying the HAL defect
//     the paper traced to Fedora's new Hardware Abstraction Layer (Azzurro)
//     and to Windows (Win) lose or delay hotplug events, which is why bind
//     failures appear only on those two machines (Figure 4);
//   - connection "infant mortality" (Figure 3b): connection setup can leave
//     latent defects (corrupted stack structures) that surface within the
//     first packets of a transfer.
package stack

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/bnep"
	"repro/internal/core"
	"repro/internal/hci"
	"repro/internal/sim"
)

// OSInfo describes a host's operating system, per the paper's Table 1.
type OSInfo struct {
	Family       string // "Linux" or "Windows"
	Distribution string // e.g. "Mandrake", "Fedora", "Familiar 0.8.1"
	Kernel       string // e.g. "2.4.21-0.13mdk"

	// HALDefect marks the defective hotplug/HAL behaviour observed on
	// Azzurro (Fedora) and Win: hotplug events get delayed or lost.
	HALDefect bool

	// BootTime is the reboot duration used by the system-reboot SIRAs.
	BootTime sim.Time

	// AppRestartTime is the BlueTest restart duration on this OS.
	AppRestartTime sim.Time
}

// HotplugConfig parameterises the hotplug/HAL daemon. The HAL defect is
// intermittent: most interface creations configure normally even on
// defective hosts, but occasionally the event is served late (delay x
// DefectDelayFactor) or lost outright — those occasions are the bind
// failures of Figure 4.
type HotplugConfig struct {
	// ConfigDelay is the healthy-path delay between interface creation and
	// configuration (the OS half of T_H).
	ConfigDelay sim.Time

	// DefectDelayFactor multiplies ConfigDelay when the defect manifests as
	// a late event.
	DefectDelayFactor float64

	// DefectExtendProb is the per-creation probability (on HAL-defective
	// hosts only) that the event is served late.
	DefectExtendProb float64

	// DefectLossProb is the per-creation probability (defective hosts only)
	// that the event is lost outright; the HAL daemon then times out.
	DefectLossProb float64

	// HALTimeout is how long the HAL daemon waits before logging its
	// timeout when the event was lost.
	HALTimeout sim.Time
}

// DefaultHotplugConfig returns calibrated hotplug parameters.
func DefaultHotplugConfig() HotplugConfig {
	return HotplugConfig{
		ConfigDelay:       80 * sim.Millisecond,
		DefectDelayFactor: 14,
		DefectExtendProb:  1.5e-4,
		DefectLossProb:    4e-5,
		HALTimeout:        10 * sim.Second,
	}
}

// Validate reports configuration errors.
func (c HotplugConfig) Validate() error {
	switch {
	case c.ConfigDelay <= 0 || c.HALTimeout <= 0:
		return fmt.Errorf("stack: non-positive hotplug timing")
	case c.DefectDelayFactor < 1:
		return fmt.Errorf("stack: defect delay factor %v < 1", c.DefectDelayFactor)
	case c.DefectExtendProb < 0 || c.DefectExtendProb > 1 ||
		c.DefectLossProb < 0 || c.DefectLossProb > 1:
		return fmt.Errorf("stack: hotplug probability out of range")
	default:
		return nil
	}
}

// Hotplug is the hotplug/HAL daemon of one host: it configures BNEP
// interfaces after creation and logs HAL timeouts when events are lost.
type Hotplug struct {
	cfg    HotplugConfig
	world  *sim.World
	node   string
	defect bool
	rng    *rand.Rand
	sink   hci.Sink

	timeouts  int
	lostIface *bnep.Interface
}

// NewHotplug builds the daemon for a host.
func NewHotplug(cfg HotplugConfig, world *sim.World, node string, defect bool, rng *rand.Rand, sink hci.Sink) *Hotplug {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if world == nil {
		panic("stack: nil world")
	}
	return &Hotplug{cfg: cfg, world: world, node: node, defect: defect, rng: rng, sink: sink}
}

// Timeouts reports the count of HAL timeouts logged.
func (h *Hotplug) Timeouts() int { return h.timeouts }

// delay reports the configuration delay, late reports whether the defect
// manifested as a late event this time.
func (h *Hotplug) delay(late bool) sim.Time {
	d := h.cfg.ConfigDelay
	if late {
		d = sim.Time(float64(d) * h.cfg.DefectDelayFactor)
	}
	// +-25% jitter keeps the race probabilistic rather than a step function.
	jitter := 0.75 + h.rng.Float64()*0.5
	return sim.Time(float64(d) * jitter)
}

// OnCreated reacts to a freshly created BNEP interface: normally it
// schedules the configuration event after its delay; when the intermittent
// HAL defect manifests, the event is either served late or lost — a lost
// event schedules the HAL timeout log instead and leaves the interface
// unconfigured until a Kick.
func (h *Hotplug) OnCreated(iface *bnep.Interface) {
	if iface == nil {
		return
	}
	late := false
	if h.defect {
		switch u := h.rng.Float64(); {
		case u < h.cfg.DefectLossProb:
			h.lostIface = iface
			h.world.After(h.cfg.HALTimeout, func() {
				// Only log if the interface is still waiting (a Kick or a
				// teardown may have intervened).
				if h.lostIface == iface && !iface.Configured {
					h.timeouts++
					if h.sink != nil {
						h.sink(core.CodeHotplugTimeout, "hotplug.wait_event")
					}
				}
			})
			return
		case u < h.cfg.DefectLossProb+h.cfg.DefectExtendProb:
			late = true
		}
	}
	h.world.After(h.delay(late), func() {
		iface.Configured = true
	})
}

// Kick retries configuration of a lost interface (the masking strategy's
// instrumented hotplug notification path). It reports whether a retry was
// actually pending.
func (h *Hotplug) Kick() bool {
	if h.lostIface == nil || h.lostIface.Configured {
		return false
	}
	iface := h.lostIface
	h.lostIface = nil
	h.world.After(h.cfg.ConfigDelay, func() {
		iface.Configured = true
	})
	return true
}
