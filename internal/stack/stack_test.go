package stack

import (
	"errors"
	"testing"

	"repro/internal/bnep"
	"repro/internal/core"
	"repro/internal/hci"
	"repro/internal/pan"
	"repro/internal/sim"
	"repro/internal/transport"
)

// quietConfig returns a host config with all spontaneous faults disabled so
// tests can force exactly one mechanism at a time.
func quietConfig(distance float64) Config {
	cfg := DefaultHostConfig(distance)
	cfg.HCI.TimeoutProbIdle, cfg.HCI.TimeoutProbBusy, cfg.HCI.InquiryFailProb = 0, 0, 0
	cfg.L2CAP.UnexpectedFrameProb, cfg.L2CAP.DataFaultPerPacket = 0, 0
	cfg.BNEP.ModuleMissingProb, cfg.BNEP.OccupiedProb, cfg.BNEP.AddFailedProb = 0, 0, 0
	cfg.PAN.StaleCacheFailProb, cfg.PAN.FreshFailProb = 0, 0
	cfg.PAN.SwitchReqExtraTimeout = 0
	cfg.PAN.SwitchCmdL2CAPProb, cfg.PAN.SwitchCmdBNEPProb, cfg.PAN.SwitchCmdHCIProb = 0, 0, 0
	cfg.SDP.RefuseProb, cfg.SDP.TimeoutProb, cfg.SDP.MissProb = 0, 0, 0
	cfg.Hotplug.DefectExtendProb, cfg.Hotplug.DefectLossProb = 0, 0
	cfg.Radio.BERGood, cfg.Radio.BERBad = 0, 0
	cfg.Radio.InterferencePerHour = 0
	cfg.LatentDefectProb = 0
	return cfg
}

type bed struct {
	world  *sim.World
	nap    *Host
	panu   *Host
	connID uint64
	logs   []core.ErrorCode
}

func newBed(t *testing.T, mutate func(panu, nap *Config), osInfo OSInfo) *bed {
	t.Helper()
	b := &bed{world: sim.NewWorld(99)}
	sink := func(code core.ErrorCode, op string) { b.logs = append(b.logs, code) }
	panuCfg := quietConfig(5)
	napCfg := quietConfig(0)
	if mutate != nil {
		mutate(&panuCfg, &napCfg)
	}
	b.nap = NewHost(napCfg, b.world, "Giallo",
		OSInfo{Family: "Linux", Distribution: "Mandrake", BootTime: 90 * sim.Second, AppRestartTime: 8 * sim.Second},
		0, false, true,
		transport.NewUSB(transport.DefaultUSBConfig(), "Giallo", func() sim.Time { return b.world.Now() }, b.world.RNG("usb.Giallo")),
		&b.connID, sink)
	b.panu = NewHost(panuCfg, b.world, "Verde", osInfo, 5, false, false,
		transport.NewH4(transport.H4Config{BaudRate: 115200}),
		&b.connID, sink)
	return b
}

func defaultOS() OSInfo {
	return OSInfo{Family: "Linux", Distribution: "Mandrake",
		BootTime: 90 * sim.Second, AppRestartTime: 8 * sim.Second}
}

// connect establishes baseband + PAN, returning the connection and the time
// PAN connect completed.
func (b *bed) connect(t *testing.T) (*pan.Conn, sim.Time) {
	t.Helper()
	hd, res := b.panu.HCI.CreateConnection("Giallo")
	if res.Err != nil {
		t.Fatalf("baseband: %v", res.Err)
	}
	b.world.RunUntil(b.world.Now() + 10*sim.Second)
	conn, cres := b.panu.PANU.Connect(hd, b.nap.NAP, true)
	if cres.Err != nil {
		t.Fatalf("pan connect: %v", cres.Err)
	}
	b.panu.Hotplug.OnCreated(conn.Iface)
	return conn, b.world.Now()
}

func TestHostAssembly(t *testing.T) {
	b := newBed(t, nil, defaultOS())
	if b.nap.NAP == nil || b.nap.SDPServer == nil {
		t.Error("NAP host missing NAP role")
	}
	if b.nap.PANU != nil || b.nap.Tx != nil {
		t.Error("NAP host should not have PANU role or data plane")
	}
	if b.panu.PANU == nil || b.panu.Tx == nil || b.panu.Link == nil {
		t.Error("PANU host missing data plane")
	}
	if b.panu.SDPServer != nil {
		t.Error("PANU should not run an SDP server")
	}
	// The NAP registers its service record on construction.
	if b.nap.SDPServer.Records() != 1 {
		t.Errorf("NAP records = %d, want 1", b.nap.SDPServer.Records())
	}
}

func TestBindRaceBeforeTC(t *testing.T) {
	b := newBed(t, nil, defaultOS())
	conn, connectedAt := b.connect(t)
	// Bind immediately: inside the T_C window.
	_, err := b.panu.Bind(conn, connectedAt)
	var se *core.SimError
	if !errors.As(err, &se) || se.Code != core.CodeHCIInvalidHandle {
		t.Fatalf("bind before T_C: %v, want HCI invalid handle", err)
	}
}

func TestBindRaceBeforeTH(t *testing.T) {
	// Defective HAL manifesting as a late event: configuration takes
	// DefectDelayFactor longer, so a bind after T_C but quickly still finds
	// the interface unconfigured.
	osInfo := defaultOS()
	osInfo.Distribution = "Fedora"
	osInfo.HALDefect = true
	b := newBed(t, func(panu, nap *Config) {
		panu.Hotplug.DefectExtendProb = 1
	}, osInfo)
	conn, connectedAt := b.connect(t)
	// Advance past T_C but not past the defective T_H.
	b.world.RunUntil(connectedAt + b.panu.cfg.TCWindow + 50*sim.Millisecond)
	_, err := b.panu.Bind(conn, connectedAt)
	var se *core.SimError
	if !errors.As(err, &se) || se.Code != core.CodeBNEPModuleMissing {
		t.Fatalf("bind before T_H: %v, want BNEP module missing", err)
	}
}

func TestBindSucceedsAfterHotplug(t *testing.T) {
	b := newBed(t, nil, defaultOS())
	conn, connectedAt := b.connect(t)
	b.world.RunUntil(connectedAt + 5*sim.Second)
	sock, err := b.panu.Bind(conn, connectedAt)
	if err != nil {
		t.Fatalf("bind after T_C+T_H: %v", err)
	}
	if sock == nil || !sock.Bound {
		t.Fatal("no bound socket")
	}
}

func TestBindMaskingWaitsOutTheRace(t *testing.T) {
	osInfo := defaultOS()
	osInfo.HALDefect = true
	b := newBed(t, nil, osInfo)
	conn, connectedAt := b.connect(t)
	wait := b.panu.WaitForBind(conn, connectedAt)
	if wait <= 0 {
		t.Fatal("masking should require a wait right after connect")
	}
	b.world.RunUntil(b.world.Now() + wait)
	if _, err := b.panu.Bind(conn, connectedAt); err != nil {
		t.Fatalf("masked bind still failed: %v", err)
	}
}

func TestHotplugLostEventLogsHALTimeout(t *testing.T) {
	osInfo := defaultOS()
	osInfo.HALDefect = true
	b := newBed(t, func(panu, nap *Config) {
		panu.Hotplug.DefectLossProb = 1
	}, osInfo)
	conn, connectedAt := b.connect(t)
	b.world.RunUntil(connectedAt + 30*sim.Second)
	if conn.Iface.Configured {
		t.Fatal("lost event should leave interface unconfigured")
	}
	if b.panu.Hotplug.Timeouts() != 1 {
		t.Errorf("HAL timeouts = %d, want 1", b.panu.Hotplug.Timeouts())
	}
	found := false
	for _, c := range b.logs {
		if c == core.CodeHotplugTimeout {
			found = true
		}
	}
	if !found {
		t.Error("HAL timeout not in system log")
	}
	// Masking kicks the daemon and recovers.
	wait := b.panu.WaitForBind(conn, connectedAt)
	b.world.RunUntil(b.world.Now() + wait)
	if _, err := b.panu.Bind(conn, connectedAt); err != nil {
		t.Fatalf("kick did not recover: %v", err)
	}
}

func TestPipeDeliversOnCleanChannel(t *testing.T) {
	b := newBed(t, nil, defaultOS())
	conn, connectedAt := b.connect(t)
	b.world.RunUntil(connectedAt + 5*sim.Second)
	pipe := b.panu.OpenPipe(conn)
	for i := 0; i < 50; i++ {
		out, dur := pipe.SendPacket(core.PTDH5, 1691)
		if out != PacketDelivered {
			t.Fatalf("packet %d: %v", i, out)
		}
		if dur <= 0 {
			t.Fatal("transfer should take time")
		}
	}
	if pipe.Sent() != 50 {
		t.Errorf("Sent = %d", pipe.Sent())
	}
}

func TestPipeLatentDefectStrikesEarly(t *testing.T) {
	b := newBed(t, func(panu, nap *Config) {
		panu.LatentDefectProb = 1
		panu.LatentMeanPackets = 5
	}, defaultOS())
	conn, connectedAt := b.connect(t)
	b.world.RunUntil(connectedAt + 5*sim.Second)
	pipe := b.panu.OpenPipe(conn)
	if pipe.LatentAt() < 0 {
		t.Fatal("defect lottery should have fired with prob 1")
	}
	var lostAt = -1
	for i := 0; i < 10000; i++ {
		out, _ := pipe.SendPacket(core.PTDH1, 27)
		if out == PacketLost {
			lostAt = i
			break
		}
	}
	if lostAt < 0 {
		t.Fatal("latent defect never struck")
	}
}

func TestPipeL2CAPDataFault(t *testing.T) {
	b := newBed(t, func(panu, nap *Config) {
		panu.L2CAP.DataFaultPerPacket = 1
	}, defaultOS())
	conn, connectedAt := b.connect(t)
	b.world.RunUntil(connectedAt + 5*sim.Second)
	pipe := b.panu.OpenPipe(conn)
	out, _ := pipe.SendPacket(core.PTDH1, 27)
	if out != PacketLost {
		t.Fatalf("outcome = %v, want lost", out)
	}
}

func TestResetStackClearsState(t *testing.T) {
	b := newBed(t, nil, defaultOS())
	conn, _ := b.connect(t)
	_ = conn
	if b.panu.HCI.OpenHandles() == 0 {
		t.Fatal("precondition: a handle should be open")
	}
	b.panu.ResetStack()
	if b.panu.HCI.OpenHandles() != 0 || b.panu.L2CAP.OpenChannels() != 0 || b.panu.BNEP.Occupied() {
		t.Error("reset left state behind")
	}
}

func TestReboot(t *testing.T) {
	b := newBed(t, nil, defaultOS())
	dur := b.panu.Reboot()
	if dur != defaultOS().BootTime {
		t.Errorf("boot time = %v", dur)
	}
	if b.panu.Reboots() != 1 {
		t.Errorf("Reboots = %d", b.panu.Reboots())
	}
	b.world.RunUntil(b.world.Now() + dur + sim.Second)
	if b.panu.Uptime() > 2*sim.Second {
		t.Errorf("uptime = %v after fresh boot", b.panu.Uptime())
	}
}

func TestDefaultHostConfigValidates(t *testing.T) {
	cfg := DefaultHostConfig(5)
	if err := cfg.HCI.Validate(); err != nil {
		t.Error(err)
	}
	if err := cfg.L2CAP.Validate(); err != nil {
		t.Error(err)
	}
	if err := cfg.BNEP.Validate(); err != nil {
		t.Error(err)
	}
	if err := cfg.PAN.Validate(); err != nil {
		t.Error(err)
	}
	if err := cfg.SDP.Validate(); err != nil {
		t.Error(err)
	}
	if err := cfg.Hotplug.Validate(); err != nil {
		t.Error(err)
	}
	if err := cfg.ARQ.Validate(); err != nil {
		t.Error(err)
	}
	if err := cfg.Radio.Validate(); err != nil {
		t.Error(err)
	}
}

func TestHotplugConfigValidate(t *testing.T) {
	bad := DefaultHotplugConfig()
	bad.DefectDelayFactor = 0.5
	if bad.Validate() == nil {
		t.Error("factor < 1 should fail")
	}
	bad = DefaultHotplugConfig()
	bad.ConfigDelay = 0
	if bad.Validate() == nil {
		t.Error("zero delay should fail")
	}
}

func TestBindNilConn(t *testing.T) {
	b := newBed(t, nil, defaultOS())
	if _, err := b.panu.Bind(nil, 0); err == nil {
		t.Error("bind(nil) should fail")
	}
}

var _ = bnep.MTU // keep the import explicit about the MTU dependency

var _ Sink = hci.Sink(nil)
