package stack

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/baseband"
	"repro/internal/bnep"
	"repro/internal/core"
	"repro/internal/hci"
	"repro/internal/l2cap"
	"repro/internal/pan"
	"repro/internal/radio"
	"repro/internal/sdp"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Config gathers the per-layer configurations of one host.
type Config struct {
	HCI     hci.Config
	L2CAP   l2cap.Config
	BNEP    bnep.Config
	PAN     pan.Config
	SDP     sdp.ServerConfig
	Hotplug HotplugConfig
	ARQ     baseband.ARQConfig
	Radio   radio.Config

	// TCWindow is the interval after PAN connect during which the L2CAP
	// handle is not yet valid for socket operations (the paper's T_C).
	TCWindow sim.Time

	// LatentDefectProb is the per-connection probability of a setup-time
	// latent defect (Figure 3b infant mortality); LatentMeanPackets is the
	// mean packet index at which it strikes (geometric).
	LatentDefectProb  float64
	LatentMeanPackets float64
}

// DefaultHostConfig returns a calibrated per-host configuration for a PANU
// at the given antenna distance.
func DefaultHostConfig(distanceM float64) Config {
	return Config{
		HCI:               hci.DefaultConfig(),
		L2CAP:             l2cap.DefaultConfig(),
		BNEP:              bnep.DefaultConfig(),
		PAN:               pan.DefaultConfig(),
		SDP:               sdp.DefaultServerConfig(),
		Hotplug:           DefaultHotplugConfig(),
		ARQ:               baseband.DefaultARQConfig(),
		Radio:             radio.DefaultConfig(distanceM),
		TCWindow:          60 * sim.Millisecond,
		LatentDefectProb:  0.005,
		LatentMeanPackets: 120,
	}
}

// Host is one complete Bluetooth node of a testbed.
type Host struct {
	Node string
	OS   OSInfo
	// DistanceM is the antenna distance from the NAP (0 for the NAP).
	DistanceM float64
	// IsPDA marks the BCSP-transport handhelds (iPAQ, Zaurus).
	IsPDA bool

	World *sim.World

	Transport transport.Transport
	HCI       *hci.Host
	L2CAP     *l2cap.Mux
	BNEP      *bnep.Service
	PANU      *pan.PANU
	SDPClient *sdp.Client
	SDPServer *sdp.Server // non-nil on the NAP
	NAP       *pan.NAP    // non-nil on the NAP
	Hotplug   *Hotplug

	Link *radio.Link           // PANU→NAP RF link (nil on the NAP)
	Tx   *baseband.Transmitter // data plane over Link (nil on the NAP)

	cfg  Config
	rng  *rand.Rand
	sink hci.Sink

	// Reboot/restart bookkeeping for the SIRAs.
	upSince sim.Time
	reboots int
}

// Sink is re-exported for constructors: it receives (code, op) pairs and is
// expected to stamp them with the host's identity and current time.
type Sink = hci.Sink

// NewHost assembles a full host. sink receives every system-level error the
// stack raises; nextConnID is the testbed-wide connection counter; napRef
// wires PANU hosts to their NAP (nil while constructing the NAP itself).
func NewHost(cfg Config, world *sim.World, node string, os OSInfo, distanceM float64,
	isPDA, isNAP bool, tr transport.Transport, nextConnID *uint64, sink Sink) *Host {
	if world == nil || tr == nil {
		panic("stack: nil world or transport")
	}
	h := &Host{
		Node:      node,
		OS:        os,
		DistanceM: distanceM,
		IsPDA:     isPDA,
		World:     world,
		Transport: tr,
		cfg:       cfg,
		rng:       world.RNG("stack." + node),
		sink:      sink,
	}
	clock := func() sim.Time { return world.Now() }
	h.HCI = hci.NewHost(cfg.HCI, node, tr, clock, world.RNG("hci."+node), sink)
	h.L2CAP = l2cap.NewMux(cfg.L2CAP, node, h.HCI, world.RNG("l2cap."+node), sink)
	h.BNEP = bnep.NewService(cfg.BNEP, node, clock, world.RNG("bnep."+node), sink)
	h.Hotplug = NewHotplug(cfg.Hotplug, world, node, os.HALDefect, world.RNG("hotplug."+node), sink)
	h.SDPClient = sdp.NewClient(node, h.L2CAP, sink)
	if isNAP {
		h.SDPServer = sdp.NewServer(cfg.SDP, node, world.RNG("sdp."+node), sink)
		h.NAP = pan.NewNAP(node, h.HCI, h.SDPServer)
	} else {
		h.PANU = pan.NewPANU(cfg.PAN, node, h.HCI, h.L2CAP, h.BNEP,
			nextConnID, world.RNG("pan."+node), sink)
		h.Link = radio.NewLink(cfg.Radio, world.RNG("radio."+node))
		h.Tx = baseband.NewTransmitter(cfg.ARQ, h.Link, world.RNG("arq."+node))
	}
	return h
}

// Config returns the host's configuration.
func (h *Host) Config() Config { return h.cfg }

// Uptime reports the time since the last (re)boot.
func (h *Host) Uptime() sim.Time { return h.World.Now() - h.upSince }

// Reboots reports how many reboots the host has performed.
func (h *Host) Reboots() int { return h.reboots }

// ResetStack clears BT stack state (the "BT stack reset" SIRA): HCI handles,
// L2CAP channels and the BNEP interface all drop.
func (h *Host) ResetStack() {
	h.HCI.Reset()
	h.L2CAP.Reset()
	h.BNEP.DestroyChannel()
}

// Reboot models a full system reboot: stack state clears and the boot time
// elapses (the caller schedules around the returned duration).
func (h *Host) Reboot() sim.Time {
	h.ResetStack()
	h.reboots++
	h.upSince = h.World.Now() + h.OS.BootTime
	return h.OS.BootTime
}

// Pipe is the data plane of one PAN connection: it applies the connection's
// latent-defect state, L2CAP data-phase faults, segmentation, and the ARQ.
type Pipe struct {
	Conn *pan.Conn
	host *Host

	// latentAt is the packet index at which the setup-time latent defect
	// strikes (-1: no defect). Figure 3b's infant-mortality mechanism.
	latentAt int
	sent     int
}

// PacketOutcome classifies one workload packet transfer.
type PacketOutcome int

// Transfer outcomes, mirroring baseband outcomes plus the latent defect.
const (
	PacketDelivered PacketOutcome = iota
	PacketLost
	PacketCorrupted
)

// String names the outcome.
func (o PacketOutcome) String() string {
	switch o {
	case PacketDelivered:
		return "delivered"
	case PacketLost:
		return "lost"
	case PacketCorrupted:
		return "corrupted"
	default:
		return fmt.Sprintf("PacketOutcome(%d)", int(o))
	}
}

// OpenPipe wraps a fresh PAN connection with its data-plane state, sampling
// the latent-defect lottery for this connection.
func (h *Host) OpenPipe(conn *pan.Conn) *Pipe {
	if h.Tx == nil {
		panic("stack: OpenPipe on a non-PANU host")
	}
	p := &Pipe{Conn: conn, host: h, latentAt: -1}
	if h.cfg.LatentDefectProb > 0 && h.rng.Float64() < h.cfg.LatentDefectProb {
		// Geometric packet index with the configured mean: young
		// connections carry their setup defects into the first packets.
		mean := h.cfg.LatentMeanPackets
		if mean < 1 {
			mean = 1
		}
		p.latentAt = int(h.rng.ExpFloat64() * mean)
	}
	return p
}

// Sent reports how many packets this pipe has carried.
func (p *Pipe) Sent() int { return p.sent }

// LatentAt exposes the defect index for tests (-1 when absent).
func (p *Pipe) LatentAt() int { return p.latentAt }

// SendPacket carries one workload packet of size bytes using packet type pt.
// It returns the outcome and the elapsed transfer time.
func (p *Pipe) SendPacket(pt core.PacketType, size int) (PacketOutcome, sim.Time) {
	if size <= 0 {
		size = 1
	}
	if size > bnep.MTU {
		size = bnep.MTU
	}
	// Latent setup defect: strikes once at its packet index, breaking the
	// link state (manifests as a loss; the connection usually needs a
	// reset afterwards — the workload handles that).
	if p.latentAt >= 0 && p.sent >= p.latentAt {
		p.latentAt = -1
		p.sent++
		return PacketLost, 30 * sim.Second // the workload's loss timeout
	}
	// L2CAP data-phase framing fault.
	if p.host.L2CAP.DataFault() {
		p.sent++
		return PacketLost, 30 * sim.Second
	}
	// Keep the shared piconet slot clock in step with virtual time, so
	// fading states correlate with the campaign clock.
	nowSlot := int64(p.host.World.Now() / sim.Slot)
	if nowSlot > p.host.Tx.Slot() {
		p.host.Tx.AdvanceTo(nowSlot)
	}
	plan := l2cap.PlanSDU(size, pt)
	res := p.host.Tx.SendSDU(pt, plan.Count, plan.Budget, plan.LastLen)
	p.sent++
	switch res.Outcome {
	case baseband.Dropped:
		return PacketLost, res.Elapsed + 30*sim.Second
	case baseband.Corrupted:
		return PacketCorrupted, res.Elapsed
	}
	return PacketDelivered, res.Elapsed
}

// Socket is the IP socket layer entry point for the bind race.
type Socket struct {
	Bound bool
	iface *bnep.Interface
}

// Bind attempts to bind an IP socket to the connection's BNEP interface at
// the current instant. The failure legs mirror the paper's analysis:
//
//   - before T_C has elapsed the L2CAP handle is invalid → HCI
//     "command for unknown connection handle";
//   - after T_C but before the hotplug configuration completes → the
//     interface is missing or unconfigured (BNEP module evidence; if the
//     hotplug event was lost the HAL timeout will land in the log too).
func (h *Host) Bind(conn *pan.Conn, connectedAt sim.Time) (*Socket, error) {
	now := h.World.Now()
	if conn == nil || conn.Iface == nil {
		return nil, core.NewSimError(core.CodeBNEPModuleMissing, "socket.bind", h.Node)
	}
	if now < connectedAt+h.cfg.TCWindow {
		if h.sink != nil {
			h.sink(core.CodeHCIInvalidHandle, "socket.bind")
		}
		return nil, core.NewSimError(core.CodeHCIInvalidHandle, "socket.bind", h.Node)
	}
	if !conn.Iface.Configured {
		if h.sink != nil {
			h.sink(core.CodeBNEPModuleMissing, "socket.bind")
		}
		return nil, core.NewSimError(core.CodeBNEPModuleMissing, "socket.bind", h.Node)
	}
	return &Socket{Bound: true, iface: conn.Iface}, nil
}

// WaitForBind is the masking strategy for "Bind failed": it reports the
// extra time the instrumented API must wait until both T_C and T_H have
// elapsed, kicking the hotplug daemon if the event was lost. The caller
// advances virtual time by the returned duration and then binds.
func (h *Host) WaitForBind(conn *pan.Conn, connectedAt sim.Time) sim.Time {
	now := h.World.Now()
	var wait sim.Time
	if tc := connectedAt + h.cfg.TCWindow; now < tc {
		wait = tc - now
	}
	if conn != nil && conn.Iface != nil && !conn.Iface.Configured {
		h.Hotplug.Kick()
		// Conservative bound: twice the defect-path configuration delay,
		// which dominates the jittered worst case (1.25x).
		d := sim.Time(2 * float64(h.cfg.Hotplug.ConfigDelay) * h.cfg.Hotplug.DefectDelayFactor)
		if d > wait {
			wait = d
		}
	}
	return wait
}
