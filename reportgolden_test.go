package btpan

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/sim"
)

// The report-capture suite pins the byte-exact canonical reports — the
// btcampaign/btsink campaign report (WriteReport), the scatternet metro
// roll-up, and the bridge/redundancy tables — against captures taken before
// the taxonomy/survival schema change (PR 10). With taxonomy rendering off
// (the default), every one of these reports must stay byte-identical: the
// new record fields, accumulators and codec version must be invisible to
// every pre-existing output.
//
// Regenerate (only when intentionally re-baselining on a known-good tree)
// with:
//
//	go test -run TestGoldenReportCaptures -update-report-golden
var updateReportGolden = flag.Bool("update-report-golden", false,
	"rewrite testdata/report_golden.txt from the current tree")

// reportGoldenPath is the capture file the suite pins against.
const reportGoldenPath = "testdata/report_golden.txt"

// captureReportGolden renders the pinned report matrix: the canonical
// campaign report on both aggregation planes and two scenarios, the
// scatternet metro roll-up, and the bridge + redundancy tables of a
// K-redundant span.
func captureReportGolden(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	for _, scen := range []Scenario{ScenarioRebootOnly, ScenarioSIRAs} {
		for _, streaming := range []bool{false, true} {
			cfg := CampaignConfig{Seed: 7, Duration: 6 * sim.Hour,
				Scenario: scen, Streaming: streaming, Parallelism: 1}
			res, err := RunCampaign(cfg)
			if err != nil {
				t.Fatalf("campaign scenario=%v streaming=%v: %v", scen, streaming, err)
			}
			fmt.Fprintf(&b, "=== campaign scenario=%v streaming=%v\n", scen, streaming)
			WriteReport(&b, res)
		}
	}

	roll := ScatternetConfig{
		CampaignConfig: CampaignConfig{Seed: 7, Duration: 6 * sim.Hour,
			Scenario: ScenarioSIRAs, Streaming: true, Parallelism: 1},
		Piconets: 3, Topology: TopologyRing, HoldTime: 10 * sim.Second,
		Rollup: true,
	}
	rollRes, err := RunScatternet(roll)
	if err != nil {
		t.Fatalf("scatternet rollup: %v", err)
	}
	fmt.Fprintf(&b, "=== scatternet rollup ring P=3\n%s", rollRes.Rollup.Render())

	red := ScatternetConfig{
		CampaignConfig: CampaignConfig{Seed: 7, Duration: 6 * sim.Hour,
			Scenario: ScenarioSIRAs, Streaming: true, Parallelism: 1},
		Piconets: 2, Bridges: 1, Redundancy: 2, HoldTime: 10 * sim.Second,
	}
	redRes, err := RunScatternet(red)
	if err != nil {
		t.Fatalf("scatternet redundancy: %v", err)
	}
	fmt.Fprintf(&b, "=== scatternet redundancy P=2 K=2\n")
	fmt.Fprintf(&b, "bridges:\n%s", redRes.Bridges.Render())
	fmt.Fprintf(&b, "redundancy:\n%s", redRes.Redundancy.Render())
	return b.String()
}

// TestGoldenReportCaptures pins every canonical report byte-for-byte against
// the pre-schema-change captures.
func TestGoldenReportCaptures(t *testing.T) {
	if testing.Short() {
		t.Skip("report capture matrix runs several six-hour campaigns; skipped in -short")
	}
	got := captureReportGolden(t)
	if *updateReportGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(reportGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", reportGoldenPath, len(got))
		return
	}
	want, err := os.ReadFile(reportGoldenPath)
	if err != nil {
		t.Fatalf("missing capture file (run with -update-report-golden on a known-good tree): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("report diverges from the pre-change capture at line %d:\ngot:  %s\nwant: %s",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("report capture length diverges: got %d lines, want %d",
		len(gotLines), len(wantLines))
}
