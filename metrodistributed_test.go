package btpan

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/collector"
	"repro/internal/sim"
)

// The metro distributed-plane acceptance suite: scatternet districts run as
// separate agent processes (goroutines around real campaign engines, exactly
// as cmd/btagent -scatternet does) shipping fold partials to a district sink,
// and the merged metro report must be byte-identical to the single-process
// `RunScatternet` rollup — on a clean network, under seeded
// loss/duplication/reordering, across an agent crash + re-run, and across a
// sink kill -9 + checkpoint restore. These are the in-process versions of
// scripts/chaos_metro.sh.

// metroConfig is the suite's scatternet campaign: a 4-piconet bridged ring
// with a sampled probe plane, small enough to run in seconds but exercising
// every rollup surface (fold, all-bridge table, relay depth, redundancy).
func metroConfig() ScatternetConfig {
	return ScatternetConfig{
		CampaignConfig: CampaignConfig{
			Seed: 5, Duration: 2 * sim.Hour, Scenario: ScenarioSIRAs,
			Streaming: true,
		},
		Piconets:    4,
		Topology:    TopologyRing,
		ProbeSample: 0.5,
		Rollup:      true,
	}
}

// metroNet derives the wire-level scatternet identity the way cmd/btagent
// and cmd/btsink do: effective piconet/bridge counts from the built engine,
// raw composition knobs from the config.
func metroNet(cfg ScatternetConfig) (collector.ScatterNet, error) {
	camp, err := NewScatternetCampaign(cfg)
	if err != nil {
		return collector.ScatterNet{}, err
	}
	return collector.ScatterNet{
		Piconets:    camp.Piconets(),
		Bridges:     camp.BridgeCount(),
		Topology:    cfg.Topology,
		Redundancy:  cfg.Redundancy,
		Hold:        cfg.HoldTime,
		ProbeSample: cfg.ProbeSample,
	}, nil
}

// metroDistricts splits the piconet space into the suite's two districts.
func metroDistricts(cfg ScatternetConfig, ckptDir string) ([]collector.DistrictConfig, error) {
	net, err := metroNet(cfg)
	if err != nil {
		return nil, err
	}
	camp, err := NewScatternetCampaign(cfg)
	if err != nil {
		return nil, err
	}
	mid := net.Piconets / 2
	ranges := [][2]int{{0, mid}, {mid, net.Piconets}}
	dcs := make([]collector.DistrictConfig, 0, len(ranges))
	for i, r := range ranges {
		dc := collector.DistrictConfig{
			Key:          fmt.Sprintf("district%d", i),
			Campaign:     campaignID(cfg.CampaignConfig),
			Net:          net,
			ScenarioName: camp.ScenarioName(),
			Lo:           r[0],
			Hi:           r[1],
		}
		if ckptDir != "" {
			dc.CheckpointPath = filepath.Join(ckptDir, dc.Key+".district.ckpt")
		}
		dcs = append(dcs, dc)
	}
	return dcs, nil
}

// renderMetro formats the rollup + redundancy section exactly as cmd/btmerge
// -scatternet and cmd/btcampaign -scatternet -rollup (sans banner) print it,
// with the -taxonomy appendix always on so the equivalence tests pin the
// survival plane across the wire too.
func renderMetro(roll *analysis.ScatternetRollup, red *analysis.RedundancyTable,
	duration sim.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n%s", roll.Render())
	if red != nil {
		fmt.Fprintf(&b, "\nRedundancy groups (outage charged only when a whole span is down)\n%s",
			red.Render())
	}
	fmt.Fprintf(&b, "\n%s", roll.RenderTaxonomy(duration))
	if red != nil {
		fmt.Fprintf(&b, "\n%s", red.RenderPartitionCandidates(30))
	}
	return b.String()
}

// metroReference renders the single-process rollup report the distributed
// plane must reproduce byte for byte.
func metroReference(t *testing.T, cfg ScatternetConfig) string {
	t.Helper()
	res, err := RunScatternet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var red *analysis.RedundancyTable
	if res.Topology.Bridges() > 0 {
		red = res.Redundancy
	}
	return renderMetro(res.Rollup, red, cfg.Duration)
}

// runMetroAgent runs one district agent exactly as cmd/btagent -scatternet
// does: build an independent campaign engine for the whole metro config and
// drive only the district's piconet range (plus the overlay when it owns
// piconet 0). failAfter >= 0 injects a crash: the engine computes that many
// partials and then errors out, simulating kill -9 mid-range; the caller
// restarts with a fresh engine, which re-runs past the sink's resume cursor.
func runMetroAgent(cfg ScatternetConfig, dc collector.DistrictConfig, addr string,
	stall time.Duration, fault collector.FaultConfig, failAfter int) error {
	camp, err := NewScatternetCampaign(cfg)
	if err != nil {
		return err
	}
	run := camp.PiconetPartial
	if failAfter >= 0 {
		calls := 0
		run = func(p int) (*analysis.PiconetPartial, error) {
			if calls >= failAfter {
				return nil, fmt.Errorf("injected crash before piconet %d", p)
			}
			calls++
			return camp.PiconetPartial(p)
		}
	}
	return collector.RunScatterAgent(collector.ScatterAgentConfig{
		Addr:         addr,
		Keyspace:     dc.Key,
		Campaign:     dc.Campaign,
		Net:          dc.Net,
		Lo:           dc.Lo,
		Hi:           dc.Hi,
		Overlay:      dc.Lo == 0 && dc.Net.Bridges > 0,
		RunPiconet:   run,
		RunOverlay:   camp.RunOverlay,
		RetryMin:     20 * time.Millisecond,
		RetryMax:     200 * time.Millisecond,
		RetrySeed:    int64(dc.Lo + 1),
		StallTimeout: stall,
		Fault:        fault,
	})
}

// collectMetro waits for every district partial and merges the metro report.
func collectMetro(t *testing.T, sink *collector.Sink,
	dcs []collector.DistrictConfig) string {
	t.Helper()
	parts := make([]*collector.DistrictPartial, 0, len(dcs))
	for _, dc := range dcs {
		p, err := sink.WaitDistrict(dc.Key, 120*time.Second)
		if err != nil {
			t.Fatalf("district %s: %v", dc.Key, err)
		}
		parts = append(parts, p)
	}
	roll, red, err := collector.MergeDistricts(parts)
	if err != nil {
		t.Fatal(err)
	}
	return renderMetro(roll, red, dcs[0].Campaign.Duration)
}

// runMetroDistributed runs the full two-district + sink campaign over
// loopback and returns the merged report.
func runMetroDistributed(t *testing.T, cfg ScatternetConfig,
	stall time.Duration, fault collector.FaultConfig) string {
	t.Helper()
	dcs, err := metroDistricts(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	sink, err := collector.NewSink(collector.SinkConfig{
		Addr: "127.0.0.1:0", Districts: dcs})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	errs := make(chan shardErr, len(dcs))
	for i, dc := range dcs {
		faultN := fault
		if faultN.Active() {
			faultN.Seed = fault.Seed + uint64(i) // distinct decisions per district
		}
		go func(dc collector.DistrictConfig, f collector.FaultConfig) {
			errs <- shardErr{dc.Key, runMetroAgent(cfg, dc, sink.Addr(), stall, f, -1)}
		}(dc, faultN)
	}
	for range dcs {
		if e := <-errs; e.err != nil {
			t.Fatalf("district agent %s: %v", e.name, e.err)
		}
	}
	return collectMetro(t, sink, dcs)
}

// TestMetroDistributedMatchesRollup pins the headline invariant: two
// district agents + a district sink over a clean loopback network reproduce
// the single-process `-scatternet -rollup -stream` metro report byte for
// byte at the same seed.
func TestMetroDistributedMatchesRollup(t *testing.T) {
	cfg := metroConfig()
	ref := metroReference(t, cfg)
	got := runMetroDistributed(t, cfg, 2*time.Second, collector.FaultConfig{})
	if got != ref {
		t.Errorf("distributed metro report differs from single-process rollup:\n"+
			"-- distributed --\n%s\n-- rollup --\n%s", got, ref)
	}
}

// TestMetroDistributedUnderFaults re-runs the equivalence with every
// outgoing partial frame subject to seeded drop/duplication/reordering: the
// stop-and-wait retransmission and the sink's cursor dedup must still yield
// the identical report.
func TestMetroDistributedUnderFaults(t *testing.T) {
	cfg := metroConfig()
	ref := metroReference(t, cfg)
	fault := collector.FaultConfig{Seed: 11, Drop: 0.25, Duplicate: 0.25, Reorder: 0.25}
	got := runMetroDistributed(t, cfg, 120*time.Millisecond, fault)
	if got != ref {
		t.Errorf("fault-injected metro report differs from rollup:\n"+
			"-- distributed --\n%s\n-- rollup --\n%s", got, ref)
	}
}

// TestMetroDistributedAgentCrashResume kills the overlay-owning district
// agent after it shipped exactly one piconet partial, then restarts it with
// a fresh engine (as a supervisor restarting the btagent process would):
// the restarted agent resumes from the sink's cursor, re-runs only the
// unacknowledged piconets, and the merged report is still byte-identical.
func TestMetroDistributedAgentCrashResume(t *testing.T) {
	cfg := metroConfig()
	ref := metroReference(t, cfg)
	dcs, err := metroDistricts(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sink, err := collector.NewSink(collector.SinkConfig{
		Addr: "127.0.0.1:0", Districts: dcs})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	errs := make(chan shardErr, 1)
	go func() {
		errs <- shardErr{dcs[1].Key,
			runMetroAgent(cfg, dcs[1], sink.Addr(), 2*time.Second, collector.FaultConfig{}, -1)}
	}()

	// First incarnation of district0: one partial lands, then the process dies.
	if err := runMetroAgent(cfg, dcs[0], sink.Addr(), 2*time.Second,
		collector.FaultConfig{}, 1); err == nil {
		t.Fatal("crashing agent incarnation returned nil error")
	}
	// Second incarnation: fresh engine, full range; the sink's Resume cursor
	// skips the already-acknowledged work.
	if err := runMetroAgent(cfg, dcs[0], sink.Addr(), 2*time.Second,
		collector.FaultConfig{}, -1); err != nil {
		t.Fatalf("restarted agent: %v", err)
	}
	if e := <-errs; e.err != nil {
		t.Fatalf("district agent %s: %v", e.name, e.err)
	}

	got := collectMetro(t, sink, dcs)
	if got != ref {
		t.Errorf("agent-crash metro report differs from rollup:\n"+
			"-- distributed --\n%s\n-- rollup --\n%s", got, ref)
	}
}

// TestMetroDistributedSinkCrashRestore kills the district sink (Abort: no
// drain, no final checkpoint beyond what already hit disk) once at least one
// district checkpoint exists, restarts it on the same address from the same
// checkpoint files, and requires the agents — which retry through the outage
// with backoff — to finish into a byte-identical merged report.
func TestMetroDistributedSinkCrashRestore(t *testing.T) {
	cfg := metroConfig()
	ref := metroReference(t, cfg)
	dcs, err := metroDistricts(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sink, err := collector.NewSink(collector.SinkConfig{
		Addr: "127.0.0.1:0", Districts: dcs})
	if err != nil {
		t.Fatal(err)
	}
	addr := sink.Addr()

	errs := make(chan shardErr, len(dcs))
	for _, dc := range dcs {
		go func(dc collector.DistrictConfig) {
			errs <- shardErr{dc.Key,
				runMetroAgent(cfg, dc, addr, 300*time.Millisecond, collector.FaultConfig{}, -1)}
		}(dc)
	}

	// Wait for a district checkpoint to hit disk, then kill the sink hard.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(dcs[0].CheckpointPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no district checkpoint appeared before the kill window closed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := sink.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}

	sink2, err := collector.NewSink(collector.SinkConfig{
		Addr: addr, Districts: dcs})
	if err != nil {
		t.Fatalf("sink restart: %v", err)
	}
	defer sink2.Close()

	for range dcs {
		if e := <-errs; e.err != nil {
			t.Fatalf("district agent %s: %v", e.name, e.err)
		}
	}
	got := collectMetro(t, sink2, dcs)
	if got != ref {
		t.Errorf("sink-crash metro report differs from rollup:\n"+
			"-- distributed --\n%s\n-- rollup --\n%s", got, ref)
	}
}
