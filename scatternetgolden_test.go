package btpan

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/scatternet"
	"repro/internal/sim"
)

// The golden suite proves the topology refactor behavior-preserving: the
// numbers below were captured from the PR 3 implementation (implicit ring,
// no topology layer, no probe plane, no redundancy tracking) on seed 7, six
// virtual hours, three piconets, three ring bridges, scenario SIRAs — and
// the explicit-topology engine must keep reproducing them, on both
// aggregation planes, through Ring(3) and through the legacy Piconets/
// Bridges configuration alike.

// goldenRingConfig is the pinned campaign: the exact configuration the PR 3
// golden numbers were captured under.
func goldenRingConfig(streaming bool) ScatternetConfig {
	return ScatternetConfig{
		CampaignConfig: CampaignConfig{
			Seed: 7, Duration: 6 * sim.Hour, Scenario: ScenarioSIRAs,
			Streaming: streaming, Parallelism: 1,
		},
		Piconets: 3, Bridges: 3, HoldTime: 10 * sim.Second,
	}
}

// goldenPiconetLines formats the per-piconet dataset and dependability
// fields at pinning precision.
func goldenPiconetLines(res *ScatternetResult) []string {
	var out []string
	for p, pic := range res.Piconets {
		u, s, _ := pic.DataItems()
		d := pic.Dependability()
		out = append(out, fmt.Sprintf(
			"piconet %d: reports=%d entries=%d MTTF=%.6f MTTR=%.6f avail=%.9f fail=%d",
			p, u, s, d.MTTF, d.MTTR, d.Availability, d.Failures))
	}
	return out
}

// goldenBridgeLines formats the bridge-attributed rows at pinning precision.
func goldenBridgeLines(res *ScatternetResult) []string {
	var out []string
	for _, r := range res.Bridges.Rows {
		out = append(out, fmt.Sprintf(
			"%s dev=%s serves=%v hops=%d relayed=%d lost=%d corrupt=%d outages=%d sys=%d downSum=%.9f latMean=%.9f latN=%d",
			r.Bridge, r.Device, r.Serves, r.Hops, r.Relayed, r.RelayLost, r.RelayCorrupted,
			r.Outages, r.SysErrors, r.Downtime.Sum(), r.RelayLatency.Mean(), r.RelayLatency.N()))
		for _, c := range r.Coupling {
			out = append(out, fmt.Sprintf(
				"  piconet %d: out=%d outS=%.9f del=%d lost=%d corr=%d dropOut=%d dropQ=%d",
				c.Piconet, c.Outages, c.OutageSeconds, c.Delivered, c.Lost, c.Corrupted,
				c.DroppedInOutage, c.DroppedQueueFull))
		}
	}
	return out
}

// goldenRing holds the PR 3 capture.
var goldenRing = []string{
	"piconet 0: reports=32 entries=63 MTTF=674.230389 MTTR=43.514491 avail=0.939373318 fail=32",
	"piconet 1: reports=53 entries=84 MTTF=403.131519 MTTR=57.585456 avail=0.875009042 fail=53",
	"piconet 2: reports=44 entries=63 MTTF=475.053600 MTTR=39.385912 avail=0.923439177 fail=44",
	"bridge0 dev=Verde serves=[0 1] hops=632 relayed=400 lost=0 corrupt=0 outages=180 sys=181 downSum=15963.519115291 latMean=18.388715309 latN=400",
	"  piconet 0: out=180 outS=15963.519115291 del=213 lost=0 corr=0 dropOut=548 dropQ=0",
	"  piconet 1: out=180 outS=15963.519115291 del=187 lost=0 corr=0 dropOut=546 dropQ=0",
	"bridge1 dev=Miseno serves=[1 2] hops=685 relayed=416 lost=0 corrupt=0 outages=217 sys=218 downSum=15593.659170586 latMean=14.502689140 latN=416",
	"  piconet 1: out=217 outS=15593.659170586 del=206 lost=0 corr=0 dropOut=523 dropQ=0",
	"  piconet 2: out=217 outS=15593.659170586 del=210 lost=0 corr=0 dropOut=530 dropQ=0",
	"bridge2 dev=Azzurro serves=[2 0] hops=686 relayed=437 lost=0 corrupt=0 outages=178 sys=178 downSum=15431.378299064 latMean=13.183936033 latN=437",
	"  piconet 2: out=178 outS=15431.378299064 del=214 lost=0 corr=0 dropOut=516 dropQ=0",
	"  piconet 0: out=178 outS=15431.378299064 del=223 lost=0 corr=0 dropOut=506 dropQ=0",
}

// TestGoldenRingMatchesPR3 pins the refactor against the PR 3 capture on
// both aggregation planes: running the topology engine over the legacy ring
// configuration must reproduce every pinned dataset, dependability, bridge
// and coupling number — the probe plane and redundancy trackers that now
// run alongside may add tables but may not move a single digit.
func TestGoldenRingMatchesPR3(t *testing.T) {
	if testing.Short() {
		t.Skip("golden pin runs six virtual hours x three piconets; skipped in -short")
	}
	for _, streaming := range []bool{false, true} {
		res, err := RunScatternet(goldenRingConfig(streaming))
		if err != nil {
			t.Fatal(err)
		}
		got := append(goldenPiconetLines(res), goldenBridgeLines(res)...)
		if !reflect.DeepEqual(got, goldenRing) {
			t.Errorf("streaming=%v diverges from the PR 3 golden capture:\ngot:\n%s\nwant:\n%s",
				streaming, strings.Join(got, "\n"), strings.Join(goldenRing, "\n"))
		}
	}
}

// TestRingTopologyMatchesLegacyRing pins Ring(P) ≡ the legacy Piconets/
// Bridges ring bit-identically (reflect.DeepEqual on the full bridge table
// and every piconet's tables), on both planes: the explicit membership map
// is the implicit ring made visible, nothing more.
func TestRingTopologyMatchesLegacyRing(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence pin runs six virtual hours x three piconets twice; skipped in -short")
	}
	for _, streaming := range []bool{false, true} {
		legacy, err := RunScatternet(goldenRingConfig(streaming))
		if err != nil {
			t.Fatal(err)
		}
		ringCfg := goldenRingConfig(streaming)
		ringCfg.Bridges = 0
		ringCfg.Topology = TopologyRing
		ring, err := RunScatternet(ringCfg)
		if err != nil {
			t.Fatal(err)
		}
		want := scatternet.Ring(3)
		if !reflect.DeepEqual(ring.Topology, want) {
			t.Fatalf("Ring topology resolved to %+v, want %+v", ring.Topology, want)
		}
		if !reflect.DeepEqual(legacy.Topology, want) {
			t.Fatalf("legacy ring resolved to %+v, want Ring(3) %+v", legacy.Topology, want)
		}
		if !reflect.DeepEqual(ring.Bridges, legacy.Bridges) {
			t.Errorf("streaming=%v: Ring(3) bridge table diverges from legacy ring", streaming)
		}
		if !reflect.DeepEqual(ring.RelayDepth, legacy.RelayDepth) {
			t.Errorf("streaming=%v: Ring(3) relay-depth table diverges from legacy ring", streaming)
		}
		if !reflect.DeepEqual(ring.Redundancy, legacy.Redundancy) {
			t.Errorf("streaming=%v: Ring(3) redundancy table diverges from legacy ring", streaming)
		}
		for p := range ring.Piconets {
			compareOutputs(t, fmt.Sprintf("Ring(3) piconet %d vs legacy ring (streaming=%v)", p, streaming),
				legacy.Piconet(p), ring.Piconet(p))
		}
	}
}

// TestScatternetConfigDegenerateCounts pins that Validate returns errors —
// never panics — for degenerate piconet/bridge counts combined with the
// topology and redundancy knobs.
func TestScatternetConfigDegenerateCounts(t *testing.T) {
	base := CampaignConfig{Seed: 1, Duration: Day, Scenario: ScenarioSIRAs}
	cases := []struct {
		name string
		cfg  ScatternetConfig
		ok   bool
	}{
		{"zero piconets with redundancy", ScatternetConfig{CampaignConfig: base, Piconets: 0, Bridges: 1, Redundancy: 2}, false},
		{"negative bridges with redundancy", ScatternetConfig{CampaignConfig: base, Piconets: 2, Bridges: -1, Redundancy: 2}, false},
		{"zero bridges with redundancy", ScatternetConfig{CampaignConfig: base, Piconets: 2, Bridges: 0, Redundancy: 2}, true},
		{"redundant legacy ring", ScatternetConfig{CampaignConfig: base, Piconets: 2, Bridges: 1, Redundancy: 2}, true},
		{"zero piconets ring topology", ScatternetConfig{CampaignConfig: base, Piconets: 0, Topology: TopologyRing}, false},
	}
	for _, tc := range cases {
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: Validate panicked: %v", tc.name, r)
				}
			}()
			return tc.cfg.Validate()
		}()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}
