package btpan

// Ablation benchmarks: isolate the contribution of individual design
// choices the reproduction (and the paper) lean on — which masking strategy
// buys what, how the coalescence window moves Table 2's sharpness, and what
// FEC actually does under burst versus memoryless errors.
import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/baseband"
	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// BenchmarkAblationMaskingStrategies runs the masked scenario with each
// strategy disabled in turn, reporting how much of the masking each one
// carries (the paper only reports the combined 58 %).
func BenchmarkAblationMaskingStrategies(b *testing.B) {
	run := func(mutate func(*recovery.Masking)) (failures, masked int) {
		tb, err := testbed.New(testbed.Options{
			Name: "random", Seed: 21, Kind: core.WLRandom,
			Scenario: recovery.ScenarioSIRAsMasking,
			MutateWorkload: func(node string, cfg *workload.Config) {
				mutate(&cfg.Masking)
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		tb.Run(2 * Day)
		res := tb.Results()
		for _, c := range res.Counters {
			failures += c.TotalFailures()
			masked += c.TotalMasked()
		}
		return failures, masked
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fAll, mAll := run(func(m *recovery.Masking) {})
		fNoTransient, mNoTransient := run(func(m *recovery.Masking) { m.RetryTransient = false })
		fNoSDP, mNoSDP := run(func(m *recovery.Masking) { m.SDPBeforeConnect = false })
		fNoBind, mNoBind := run(func(m *recovery.Masking) { m.BindWait = false })
		if i == 0 {
			b.Logf("all strategies:        %4d failures, %4d masked", fAll, mAll)
			b.Logf("without RetryTransient: %4d failures, %4d masked (the bulk carrier)", fNoTransient, mNoTransient)
			b.Logf("without SDPBeforeConnect: %2d failures, %4d masked", fNoSDP, mNoSDP)
			b.Logf("without BindWait:      %4d failures, %4d masked", fNoBind, mNoBind)
		}
	}
}

// BenchmarkAblationCoalescenceWindow sweeps the evidence adjacency radius at
// the paper's 330 s tuple window, showing the truncation/collapse trade-off
// the paper's sensitivity analysis worries about: a tiny radius loses
// genuine evidence (truncation), a huge one attributes unrelated errors
// (collapse), diluting e.g. the PAN-connect<-SDP relationship.
func BenchmarkAblationCoalescenceWindow(b *testing.B) {
	res := benchCampaign(b)
	radii := []sim.Time{2 * Second, coalesce.RelateRadius, 120 * Second, coalesce.PaperWindow}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, radius := range radii {
			t2 := analysis.BuildTable2(res.EvidenceRadius(coalesce.PaperWindow, radius))
			if i == 0 {
				b.Logf("radius=%4ds: PAN<-SDP %5.1f%%  HCI total %5.1f%%  no-relationship(PAN) %4.1f%%",
					int(radius.Seconds()), t2.RowShare(core.UFPANConnectFailed, core.SrcSDP),
					t2.SourceShare(core.SrcHCI), t2.NoRelationship[core.UFPANConnectFailed])
			}
		}
	}
}

// BenchmarkAblationFECBurstChannel compares DM1 (FEC) vs DH1 (plain) loss
// rates under burst and memoryless channels of equal average BER: under
// bursts the Hamming code pays its airtime without protecting (the paper's
// Figure 3a mechanism); under memoryless errors it would help.
func BenchmarkAblationFECBurstChannel(b *testing.B) {
	world := sim.NewWorld(31)
	run := func(name string, cfg radio.Config) (dm1, dh1 float64) {
		arq := baseband.DefaultARQConfig()
		arq.CRCEscape = 0
		drops := map[core.PacketType]int{}
		const volume = 1 << 21
		for _, pt := range []core.PacketType{core.PTDM1, core.PTDH1} {
			link := radio.NewLink(cfg, world.RNG("ablation."+name+pt.String()))
			tx := baseband.NewTransmitter(arq, link, world.RNG("ablationtx."+name+pt.String()))
			sent := 0
			for sent < volume {
				res := tx.Send(pt, pt.Payload())
				sent += pt.Payload()
				if res.Outcome == baseband.Dropped {
					drops[pt]++
				}
			}
		}
		return float64(drops[core.PTDM1]) / (volume / 17.0) * 1e3,
			float64(drops[core.PTDH1]) / (volume / 27.0) * 1e3
	}

	burst := radio.DefaultConfig(0)
	burst.MeanGoodDur = 2 * sim.Second
	burst.MeanBadDur = 60 * sim.Millisecond
	burst.BERBad = 0.05
	burst.BERGood = 0
	burst.InterferencePerHour = 0
	// Memoryless channel with the same average BER.
	avgBER := 0.05 * float64(burst.MeanBadDur) / float64(burst.MeanBadDur+burst.MeanGoodDur)
	flat := burst
	flat.BERGood, flat.BERBad = avgBER, avgBER

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bdm, bdh := run("burst", burst)
		fdm, fdh := run("flat", flat)
		if i == 0 {
			b.Logf("burst channel:      DM1 %.2f drops/1k pkts vs DH1 %.2f — bursts defeat the 1-bit FEC; both types drop", bdm, bdh)
			b.Logf("memoryless channel: DM1 %.2f drops/1k pkts vs DH1 %.2f — same average BER, no bursts: the ARQ absorbs everything", fdm, fdh)
		}
	}
}

// BenchmarkAblationRedundantPiconets evaluates the paper's future-work
// recommendation: overlapped redundant piconets on top of SIRAs+masking.
func BenchmarkAblationRedundantPiconets(b *testing.B) {
	var dep *analysis.RedundantDeployment
	var err error
	for i := 0; i < b.N; i++ {
		dep, err = RedundantPiconets(41, 3*Day, 2*Second)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("redundant 1-of-2 piconets:\n%s", dep.Render())
}

// BenchmarkAblationSDPGoodPractice quantifies the "always search before
// connecting" good practice alone: PAN-connect failures with the SDP flag
// false versus a workload that always searches.
func BenchmarkAblationSDPGoodPractice(b *testing.B) {
	run := func(alwaysSearch bool) int {
		tb, err := testbed.New(testbed.Options{
			Name: "random", Seed: 51, Kind: core.WLRandom,
			Scenario: recovery.ScenarioSIRAs,
			MutateWorkload: func(node string, cfg *workload.Config) {
				if alwaysSearch {
					cfg.FlagProb = 1 // SDP flag always true
				}
			},
			MutateHost: func(name string, cfg *stack.Config) {
				cfg.PAN.StaleCacheFailProb = 0.02 // amplify for a 2-day window
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		tb.Run(2 * Day)
		total := 0
		for _, c := range tb.Results().Counters {
			total += c.Failures[core.UFPANConnectFailed]
		}
		return total
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		withCache := run(false)
		always := run(true)
		if i == 0 {
			b.Logf("PAN connect failures: caching allowed %d vs always-search %d (paper: 96.5%% of PAN connect failures strike cached connects)",
				withCache, always)
		}
	}
}
