package btpan

import (
	"fmt"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/scatternet"
	"repro/internal/sim"
)

// randomTopologyBuilds counts RandomConnected materializations — observable
// by the sweep regression test that pins the shared-map hoist (a random
// sweep must not regenerate the graph once per seed in the hot loop).
var randomTopologyBuilds atomic.Int64

// Topology names for ScatternetConfig.Topology. The empty string keeps the
// legacy ring-pair composition (bridge b serves b mod P, (b+1) mod P).
const (
	// TopologyRing is the canonical ring: one bridge per ring edge.
	TopologyRing = "ring"
	// TopologyStar hangs every piconet off hub piconet 0 (minimal depth-2).
	TopologyStar = "star"
	// TopologyMesh bridges every piconet pair directly (all routes depth 1).
	TopologyMesh = "mesh"
	// TopologyRandom is a seeded random connected graph over Bridges bridges.
	TopologyRandom = "random"
)

// ScatternetConfig configures a multi-piconet scatternet campaign: the
// embedded CampaignConfig supplies the per-piconet campaign knobs (seed,
// duration, scenario, aggregation plane) and the topology fields describe
// the bridged composition. A {Piconets: 1, Bridges: 0} scatternet is the
// classic single-piconet campaign — bit-identical on a fixed seed (see
// TestScatternetOnePiconetEquivalence).
type ScatternetConfig struct {
	CampaignConfig
	// Piconets is the number of composed piconet campaigns (>= 1).
	// Piconet 0 runs on the root seed unchanged; piconet p > 0 derives
	// scatternet.PiconetSeed(Seed, p).
	Piconets int
	// Bridges is the number of bridge nodes. With the default (legacy ring)
	// topology, bridge b serves the ring pair (b mod Piconets, (b+1) mod
	// Piconets); with TopologyRandom it is the random graph's edge budget
	// (>= Piconets-1). Ring/star/mesh topologies dictate their own bridge
	// count and ignore it.
	Bridges int
	// Topology selects a built-in membership-map generator (TopologyRing,
	// TopologyStar, TopologyMesh, TopologyRandom). Empty keeps the legacy
	// ring-pair composition driven by Piconets/Bridges.
	Topology string
	// Members is an explicit bridge→piconet membership map (Members[b]
	// lists the piconets bridge b serves); it overrides Topology/Bridges.
	Members [][]int
	// Redundancy deploys K bridges per span instead of one (K <= 1 keeps
	// single bridges): every span becomes a redundancy group whose
	// correlated outage is charged only while all K bridges are down.
	Redundancy int
	// HoldTime is the bridge residency per piconet visit (default 10 s).
	HoldTime sim.Time
	// RelayEvery is the mean relay-SDU inter-arrival per directed
	// inter-piconet flow (default 30 s).
	RelayEvery sim.Time
	// RelayBytes is the relayed SDU size (default 1024).
	RelayBytes int
	// ProbeSample samples the relay probe plane over a seeded subset of
	// ordered piconet pairs: each pair is kept with this independent
	// probability, deterministically per seed. 0 (default) and 1 probe
	// every pair — the exhaustive plane, byte-identical to pre-sampling
	// runs. Sampling never perturbs the data plane; the delay-vs-depth
	// probe counts scale back by 1/fraction (Horvitz–Thompson) while the
	// delay moments are unbiased. City-scale runs want roughly
	// 4/(Piconets-1), keeping ~4·Piconets pairs.
	ProbeSample float64
	// Rollup (requires Streaming) folds every finished piconet into
	// per-shard partials merged hierarchically into one metro-wide report
	// (ScatternetResult.Rollup) and drops the per-piconet results, keeping
	// live memory flat in Piconets. Report bytes are shard-count invariant.
	Rollup bool
}

// topology resolves the configured membership map (nil for the legacy ring).
func (c ScatternetConfig) topology() (*scatternet.Topology, error) {
	var topo scatternet.Topology
	switch {
	case c.Members != nil:
		topo = scatternet.Topology{Piconets: c.Piconets, Members: c.Members}
	case c.Topology == "":
		if c.Redundancy > 1 && c.Piconets >= 1 && c.Bridges > 0 {
			topo = scatternet.RingBridges(c.Piconets, c.Bridges)
			break
		}
		// Pure legacy path — including degenerate counts, which the
		// engine's legacy validation rejects with the specific messages.
		return nil, nil
	case c.Topology == TopologyRing:
		topo = scatternet.Ring(c.Piconets)
	case c.Topology == TopologyStar:
		topo = scatternet.Star(c.Piconets)
	case c.Topology == TopologyMesh:
		topo = scatternet.Mesh(c.Piconets)
	case c.Topology == TopologyRandom:
		randomTopologyBuilds.Add(1)
		var err error
		topo, err = scatternet.RandomConnected(c.Piconets, c.Bridges, c.Seed)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("btpan: unknown topology %q (want %s, %s, %s or %s)",
			c.Topology, TopologyRing, TopologyStar, TopologyMesh, TopologyRandom)
	}
	topo = topo.WithRedundancy(c.Redundancy)
	return &topo, nil
}

// internalConfig maps the public config onto the scatternet engine's.
func (c ScatternetConfig) internalConfig() (scatternet.Config, error) {
	topo, err := c.topology()
	if err != nil {
		return scatternet.Config{}, err
	}
	cfg := scatternet.Config{
		Seed:              c.Seed,
		Duration:          c.Duration,
		Scenario:          c.Scenario,
		Piconets:          c.Piconets,
		Bridges:           c.Bridges,
		Topology:          topo,
		HoldTime:          c.HoldTime,
		RelayEvery:        c.RelayEvery,
		RelayBytes:        c.RelayBytes,
		ProbePairFraction: c.ProbeSample,
		Streaming:         c.Streaming,
		FlushEvery:        c.FlushEvery,
		Rollup:            c.Rollup,
		Parallelism:       c.Parallelism,
	}
	if topo != nil {
		// The generated map dictates the piconet/bridge counts; the engine
		// cross-checks only explicitly set fields.
		cfg.Bridges = 0
	}
	return cfg, nil
}

// Validate reports configuration errors.
func (c ScatternetConfig) Validate() error {
	cfg, err := c.internalConfig()
	if err != nil {
		return err
	}
	return cfg.Validate()
}

// ScatternetResult bundles a finished scatternet campaign: one full
// CampaignResult per piconet (every table/figure method answers per
// piconet) plus the bridge-attributed failure-coupling, delay-vs-relay-depth
// and redundancy aggregates.
type ScatternetResult struct {
	Config ScatternetConfig
	// Piconets holds the per-piconet campaign results in topology order;
	// Piconets[0] is the classic campaign of the root seed.
	Piconets []*CampaignResult
	// Topology is the effective membership map the campaign ran.
	Topology scatternet.Topology
	// Bridges attributes inter-piconet traffic and correlated outages to
	// the bridge nodes (empty table when the campaign had no bridges).
	Bridges *analysis.BridgeTable
	// RelayDepth is the delay-vs-relay-depth table from the multi-hop
	// relay probe plane (empty without bridges).
	RelayDepth *analysis.RelayDepthAccum
	// Redundancy is the per-span redundancy table: correlated outages are
	// charged only while every bridge of a span is down at once, compared
	// against the independent-failure model (empty without bridges).
	Redundancy *analysis.RedundancyTable
	// Rollup is the hierarchical metro-wide roll-up (Rollup mode only):
	// deployment-wide Table 2/3/4, the per-piconet overview, the
	// all-bridge summary and the sampled delay-vs-depth table. Piconets is
	// empty in this mode — the per-piconet results were folded and dropped
	// to keep memory flat.
	Rollup *analysis.ScatternetRollup
}

// NewScatternetCampaign validates the config and builds the underlying
// campaign engine without running it — the distributed-agent entry point,
// where a process owns only a piconet slice and drives PiconetPartial /
// RunOverlay itself instead of Run.
func NewScatternetCampaign(cfg ScatternetConfig) (*scatternet.Campaign, error) {
	engineCfg, err := cfg.internalConfig()
	if err != nil {
		return nil, err
	}
	return scatternet.New(engineCfg)
}

// RunScatternet builds and runs the scatternet campaign: every piconet is a
// full two-testbed paper campaign in its own simulation world, and the
// bridge overlay carries relayed inter-piconet traffic through the real
// stack path, failing through the standard recovery cascade. Piconets and
// the overlay are independent simulations, so they run concurrently with
// bit-identical results to a sequential pass (Parallelism: 1 to force one).
func RunScatternet(cfg ScatternetConfig) (*ScatternetResult, error) {
	engineCfg, err := cfg.internalConfig()
	if err != nil {
		return nil, err
	}
	camp, err := scatternet.New(engineCfg)
	if err != nil {
		return nil, err
	}
	res, err := camp.Run()
	if err != nil {
		return nil, err
	}
	out := &ScatternetResult{
		Config:     cfg,
		Topology:   res.Topology,
		Bridges:    res.Bridges,
		RelayDepth: res.RelayDepth,
		Redundancy: res.Redundancy,
		Rollup:     res.Rollup,
	}
	for _, pic := range res.Piconets {
		picCfg := cfg.CampaignConfig
		picCfg.Seed = scatternet.PiconetSeed(cfg.Seed, pic.Index)
		out.Piconets = append(out.Piconets, &CampaignResult{
			Config:    picCfg,
			Random:    pic.Random,
			Realistic: pic.Realistic,
			Agg:       pic.Agg,
		})
	}
	return out, nil
}

// Piconet returns piconet p's campaign result.
func (r *ScatternetResult) Piconet(p int) *CampaignResult { return r.Piconets[p] }

// Overview lines up every piconet's dataset sizes and dependability column.
// In rollup mode the per-piconet results were folded and dropped, so the
// overview comes from the roll-up instead.
func (r *ScatternetResult) Overview() *analysis.PiconetOverview {
	if len(r.Piconets) == 0 && r.Rollup != nil {
		return r.Rollup.Overview
	}
	o := &analysis.PiconetOverview{}
	for p, pic := range r.Piconets {
		u, s, _ := pic.DataItems()
		o.Rows = append(o.Rows, analysis.PiconetRow{
			Piconet:       p,
			UserReports:   u,
			SystemEntries: s,
			Depend:        pic.Dependability(),
		})
	}
	return o
}
