package btpan

import (
	"repro/internal/analysis"
	"repro/internal/scatternet"
	"repro/internal/sim"
)

// ScatternetConfig configures a multi-piconet scatternet campaign: the
// embedded CampaignConfig supplies the per-piconet campaign knobs (seed,
// duration, scenario, aggregation plane) and the topology fields describe
// the bridged composition. A {Piconets: 1, Bridges: 0} scatternet is the
// classic single-piconet campaign — bit-identical on a fixed seed (see
// TestScatternetOnePiconetEquivalence).
type ScatternetConfig struct {
	CampaignConfig
	// Piconets is the number of composed piconet campaigns (>= 1).
	// Piconet 0 runs on the root seed unchanged; piconet p > 0 derives
	// scatternet.PiconetSeed(Seed, p).
	Piconets int
	// Bridges is the number of bridge nodes time-sharing across piconets
	// (bridge b serves the ring pair b mod Piconets, (b+1) mod Piconets).
	Bridges int
	// HoldTime is the bridge residency per piconet visit (default 10 s).
	HoldTime sim.Time
	// RelayEvery is the mean relay-SDU inter-arrival per directed
	// inter-piconet flow (default 30 s).
	RelayEvery sim.Time
	// RelayBytes is the relayed SDU size (default 1024).
	RelayBytes int
}

// internalConfig maps the public config onto the scatternet engine's.
func (c ScatternetConfig) internalConfig() scatternet.Config {
	return scatternet.Config{
		Seed:        c.Seed,
		Duration:    c.Duration,
		Scenario:    c.Scenario,
		Piconets:    c.Piconets,
		Bridges:     c.Bridges,
		HoldTime:    c.HoldTime,
		RelayEvery:  c.RelayEvery,
		RelayBytes:  c.RelayBytes,
		Streaming:   c.Streaming,
		FlushEvery:  c.FlushEvery,
		Parallelism: c.Parallelism,
	}
}

// Validate reports configuration errors.
func (c ScatternetConfig) Validate() error { return c.internalConfig().Validate() }

// ScatternetResult bundles a finished scatternet campaign: one full
// CampaignResult per piconet (every table/figure method answers per
// piconet) plus the bridge-attributed failure-coupling aggregate.
type ScatternetResult struct {
	Config ScatternetConfig
	// Piconets holds the per-piconet campaign results in topology order;
	// Piconets[0] is the classic campaign of the root seed.
	Piconets []*CampaignResult
	// Bridges attributes inter-piconet traffic and correlated outages to
	// the bridge nodes (empty table when the campaign had no bridges).
	Bridges *analysis.BridgeTable
}

// RunScatternet builds and runs the scatternet campaign: every piconet is a
// full two-testbed paper campaign in its own simulation world, and the
// bridge overlay carries relayed inter-piconet traffic through the real
// stack path, failing through the standard recovery cascade. Piconets and
// the overlay are independent simulations, so they run concurrently with
// bit-identical results to a sequential pass (Parallelism: 1 to force one).
func RunScatternet(cfg ScatternetConfig) (*ScatternetResult, error) {
	camp, err := scatternet.New(cfg.internalConfig())
	if err != nil {
		return nil, err
	}
	res, err := camp.Run()
	if err != nil {
		return nil, err
	}
	out := &ScatternetResult{Config: cfg, Bridges: res.Bridges}
	for _, pic := range res.Piconets {
		picCfg := cfg.CampaignConfig
		picCfg.Seed = scatternet.PiconetSeed(cfg.Seed, pic.Index)
		out.Piconets = append(out.Piconets, &CampaignResult{
			Config:    picCfg,
			Random:    pic.Random,
			Realistic: pic.Realistic,
			Agg:       pic.Agg,
		})
	}
	return out, nil
}

// Piconet returns piconet p's campaign result.
func (r *ScatternetResult) Piconet(p int) *CampaignResult { return r.Piconets[p] }

// Overview lines up every piconet's dataset sizes and dependability column.
func (r *ScatternetResult) Overview() *analysis.PiconetOverview {
	o := &analysis.PiconetOverview{}
	for p, pic := range r.Piconets {
		u, s, _ := pic.DataItems()
		o.Rows = append(o.Rows, analysis.PiconetRow{
			Piconet:       p,
			UserReports:   u,
			SystemEntries: s,
			Depend:        pic.Dependability(),
		})
	}
	return o
}
