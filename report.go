package btpan

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// ResultFromAggregates reassembles a CampaignResult from a completed
// distributed campaign: the sink's finalized streaming aggregates plus the
// per-testbed workload counters and durations the agents shipped in their
// Done frames. The result answers every aggregate query (Table 2/3/4,
// figures, §6 scalars, data items) through exactly the same code paths as a
// single-process streaming campaign, which is what makes the distributed ≡
// single-process equivalence a digit-for-digit claim rather than a
// tolerance check.
func ResultFromAggregates(cfg CampaignConfig, agg *analysis.Aggregates,
	counters map[string]map[string]*workload.Counters,
	durations map[string]sim.Time) (*CampaignResult, error) {
	if agg == nil {
		return nil, fmt.Errorf("btpan: nil aggregates")
	}
	res := &CampaignResult{Config: cfg, Agg: agg}
	for _, name := range []string{"random", "realistic"} {
		if counters[name] == nil {
			return nil, fmt.Errorf("btpan: no counters for the %q testbed", name)
		}
		tb := &testbed.Results{Name: name, Duration: durations[name],
			Counters: make(map[string]*workload.Counters, len(counters[name]))}
		for node, c := range counters[name] {
			tb.Counters[node] = c
		}
		if name == "random" {
			res.Random = tb
		} else {
			res.Realistic = tb
		}
	}
	return res, nil
}

// WriteReport renders the campaign's streaming report — dataset sizes, the
// Table 4 column, the §6 scalars, and Tables 2 and 3 — in the canonical
// format shared by btcampaign -stream and btsink. The multi-process smoke
// test diffs the two outputs byte for byte, so any change here changes both
// sides at once.
func WriteReport(w io.Writer, res *CampaignResult) {
	u, s, tot := res.DataItems()
	fmt.Fprintf(w, "collected %d user reports + %d system entries = %d items\n", u, s, tot)
	d := res.Dependability()
	fmt.Fprintf(w, "MTTF %.2f s, MTTR %.2f s, availability %.3f, coverage %.1f%%\n",
		d.MTTF, d.MTTR, d.Availability, d.CoveragePct)
	sc := res.Scalars()
	fmt.Fprintf(w, "random-workload share %.1f%% (paper: 84%%), idle before failed %.2f s vs clean %.2f s\n",
		sc.RandomSharePct, sc.IdleBeforeFailedMean, sc.IdleBeforeCleanMean)
	fmt.Fprintf(w, "\nTable 2 (error-failure relationship)\n%s", res.Table2().Render())
	fmt.Fprintf(w, "\nTable 3 (SIRA effectiveness)\n%s", res.Table3().Render())
	t4 := &analysis.Table4{Columns: []*analysis.Dependability{d}}
	fmt.Fprintf(w, "\nTable 4 column\n%s", t4.Render())
}

// WriteTaxonomyReport renders the PR 10 taxonomy/survival plane — the
// per-phase failure split with MTBF/MTTR, the Kaplan-Meier node-uptime
// survival curve and the failure-interarrival histogram — in the shared
// canonical format (btcampaign -taxonomy and the btsink live tables use
// the same renderers, so the distributed equivalence stays byte-exact).
func WriteTaxonomyReport(w io.Writer, res *CampaignResult) {
	horizon := res.Config.Duration
	fmt.Fprintf(w, "\nFailure taxonomy (phase x transience)\n%s",
		res.Taxonomy().Table(horizon).Render())
	surv := res.Survival()
	fmt.Fprintf(w, "\n%s", surv.Curve(horizon).Render())
	fmt.Fprintf(w, "\n%s", surv.RenderInterarrival(40))
}
