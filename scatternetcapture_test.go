package btpan

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/sim"
)

// The engine-capture suite extends the PR 3 golden pin to the full topology
// matrix: the digests below testdata/scatternet_engine_golden.txt were
// captured from the pre-refactor pair-world engine (one goroutine world per
// piconet, exhaustive ordered-pair relay probing) for ring, star, mesh,
// random and the legacy ring-pair configuration at P = 1..4, on both
// aggregation planes. The sharded engine must keep reproducing every digit —
// dataset sizes, dependability, bridge coupling, relay-depth summaries,
// redundancy accounting and the rendered paper tables — before the old
// execution model could be deleted (ARCHITECTURE.md invariant 11).
//
// Regenerate (only when intentionally re-baselining against a known-good
// engine) with:
//
//	go test -run TestGoldenEngineCaptures -update-scatternet-golden
var updateScatternetGolden = flag.Bool("update-scatternet-golden", false,
	"rewrite testdata/scatternet_engine_golden.txt from the current engine")

// engineGoldenPath is the capture file the suite pins against.
const engineGoldenPath = "testdata/scatternet_engine_golden.txt"

// engineGoldenCase is one pinned topology/size configuration.
type engineGoldenCase struct {
	name string
	cfg  ScatternetConfig
}

// engineGoldenCases enumerates the pinned capture matrix: every built-in
// topology (plus the legacy ring-pair path) at P = 1..4 on one plane; the
// suite runs each on both planes.
func engineGoldenCases(streaming bool) []engineGoldenCase {
	base := CampaignConfig{
		Seed: 11, Duration: 3 * sim.Hour, Scenario: ScenarioSIRAs,
		Streaming: streaming, Parallelism: 1,
	}
	var cases []engineGoldenCase
	for p := 1; p <= 4; p++ {
		legacy := ScatternetConfig{CampaignConfig: base, Piconets: p,
			Bridges: p - 1, HoldTime: 10 * sim.Second}
		cases = append(cases, engineGoldenCase{fmt.Sprintf("legacy/P=%d", p), legacy})
		for _, topo := range []string{TopologyRing, TopologyStar, TopologyMesh, TopologyRandom} {
			cfg := ScatternetConfig{CampaignConfig: base, Piconets: p,
				Topology: topo, HoldTime: 10 * sim.Second}
			if topo == TopologyRandom {
				if p >= 2 {
					cfg.Bridges = p // spanning tree plus one extra random span
				}
			}
			cases = append(cases, engineGoldenCase{fmt.Sprintf("%s/P=%d", topo, p), cfg})
		}
	}
	return cases
}

// engineDigest renders one campaign result at pinning precision: the
// topology, the per-piconet datasets and dependability, the bridge and
// coupling rows, the relay-depth summaries, the redundancy rows, and the
// rendered overview and paper tables.
func engineDigest(res *ScatternetResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "topology: piconets=%d members=%v\n", res.Topology.Piconets, res.Topology.Members)
	for _, line := range goldenPiconetLines(res) {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	for _, line := range goldenBridgeLines(res) {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	for _, d := range res.RelayDepth.Depths() {
		s := res.RelayDepth.ByDepth[d]
		fmt.Fprintf(&b, "relay depth=%d: n=%d mean=%.9f min=%.9f max=%.9f\n",
			d, s.N(), s.Mean(), s.Min(), s.Max())
	}
	fmt.Fprintf(&b, "relay unreachable=%d\n", res.RelayDepth.Unreachable)
	for _, g := range res.Redundancy.Rows {
		fmt.Fprintf(&b, "span %v bridges=%v k=%d memberOut=%d memberDown=%v allDownN=%d allDownS=%.9f\n",
			g.Span, g.Bridges, g.K, g.MemberOutages, g.MemberDownSeconds,
			g.AllDownEpisodes, g.AllDownSeconds)
	}
	fmt.Fprintf(&b, "overview:\n%s", res.Overview().Render())
	for p, pic := range res.Piconets {
		fmt.Fprintf(&b, "piconet %d table2:\n%s", p, pic.Table2().Render())
		fmt.Fprintf(&b, "piconet %d table3:\n%s", p, pic.Table3().Render())
	}
	return b.String()
}

// captureEngineGolden runs the full capture matrix and renders the golden
// file body, one section per (config, plane).
func captureEngineGolden(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	for _, streaming := range []bool{false, true} {
		for _, tc := range engineGoldenCases(streaming) {
			res, err := RunScatternet(tc.cfg)
			if err != nil {
				t.Fatalf("%s (streaming=%v): %v", tc.name, streaming, err)
			}
			fmt.Fprintf(&b, "=== %s streaming=%v\n%s", tc.name, streaming, engineDigest(res))
		}
	}
	return b.String()
}

// TestGoldenEngineCaptures pins the engine digit-for-digit against the
// pre-refactor pair-world captures for every built-in topology at P = 1..4,
// on both aggregation planes.
func TestGoldenEngineCaptures(t *testing.T) {
	if testing.Short() {
		t.Skip("engine capture matrix runs 40 three-hour campaigns; skipped in -short")
	}
	got := captureEngineGolden(t)
	if *updateScatternetGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(engineGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", engineGoldenPath, len(got))
		return
	}
	want, err := os.ReadFile(engineGoldenPath)
	if err != nil {
		t.Fatalf("missing capture file (run with -update-scatternet-golden on a known-good engine): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("engine diverges from the pre-refactor capture at line %d:\ngot:  %s\nwant: %s",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("engine digest length diverges from the pre-refactor capture: got %d lines, want %d",
		len(gotLines), len(wantLines))
}
