package btpan

import (
	"reflect"
	"testing"

	"repro/internal/stack"
	"repro/internal/testbed"
)

// equivCampaign runs a short campaign with the ARQ fast path enabled or
// disabled on every host, sequentially, and wraps the results for analysis.
func equivCampaign(t *testing.T, slowPath bool, seed uint64) *CampaignResult {
	t.Helper()
	cfg := CampaignConfig{Seed: seed, Duration: 18 * Hour, Scenario: ScenarioSIRAs}
	c, err := testbed.NewCampaign(cfg.Seed, cfg.Scenario, func(name string, hc *stack.Config) {
		hc.ARQ.SlowPath = slowPath
	})
	if err != nil {
		t.Fatal(err)
	}
	randomRes, realisticRes := c.RunSequential(cfg.Duration)
	return &CampaignResult{Config: cfg, Random: randomRes, Realistic: realisticRes}
}

// TestSeedEquivalenceFastVsSlowPath proves the probability memoization is
// behavior-preserving: with a fixed seed, a campaign run on the memoized
// fast path produces bit-identical analysis outputs (Table 2, Table 3, the
// Table 4 column, and the §6 scalars) to one where every chunk and attempt
// probability is recomputed from scratch (ARQConfig.SlowPath). Both
// settings share the run-length and SDU-batching control flow — those are
// pinned separately by radio's TestBERRunMatchesSlotBER (run queries ==
// per-slot queries, bit for bit) and baseband's
// TestSendSDUMatchesPerFragmentSends (batch draw == per-fragment sends,
// statistically) — so a memoization divergence shows up here as a hard
// failure, not a statistical drift.
func TestSeedEquivalenceFastVsSlowPath(t *testing.T) {
	fast := equivCampaign(t, false, 11)
	slow := equivCampaign(t, true, 11)

	fu, fs, _ := fast.DataItems()
	su, ss, _ := slow.DataItems()
	if fu != su || fs != ss {
		t.Fatalf("data items diverge: fast %d/%d vs slow %d/%d", fu, fs, su, ss)
	}
	if !reflect.DeepEqual(fast.AllReports(), slow.AllReports()) {
		t.Error("user reports diverge between fast and slow paths")
	}
	if !reflect.DeepEqual(fast.Table2(), slow.Table2()) {
		t.Error("Table 2 diverges between fast and slow paths")
	}
	if !reflect.DeepEqual(fast.Table3(), slow.Table3()) {
		t.Error("Table 3 diverges between fast and slow paths")
	}
	if !reflect.DeepEqual(fast.Dependability(), slow.Dependability()) {
		t.Error("Table 4 column diverges between fast and slow paths")
	}
	if !reflect.DeepEqual(fast.Scalars(), slow.Scalars()) {
		t.Error("§6 scalars diverge between fast and slow paths")
	}
}

// TestParallelMatchesSequential proves the goroutine-per-testbed campaign
// runner changes nothing but wall-clock time: each testbed owns its kernel
// and RNG rig, so for a fixed seed the parallel and sequential runners must
// produce identical reports and tables.
func TestParallelMatchesSequential(t *testing.T) {
	run := func(parallelism int) *CampaignResult {
		res, err := RunCampaign(CampaignConfig{
			Seed: 21, Duration: 18 * Hour, Scenario: ScenarioSIRAs,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	par := run(0)
	seq := run(1)
	if !reflect.DeepEqual(par.AllReports(), seq.AllReports()) {
		t.Error("user reports diverge between parallel and sequential runners")
	}
	if !reflect.DeepEqual(par.Table2(), seq.Table2()) {
		t.Error("Table 2 diverges between parallel and sequential runners")
	}
	if !reflect.DeepEqual(par.Dependability(), seq.Dependability()) {
		t.Error("dependability diverges between parallel and sequential runners")
	}
}
