package btpan

import (
	"reflect"
	"strings"
	"testing"
)

// TestSweepDeterministicAcrossWorkerCounts proves the worker pool is pure
// orchestration: 1-worker and 4-worker sweeps of the same config produce
// identical CI tables (per-seed campaigns are independent simulations and
// the summaries fold in seed order).
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	base := SweepConfig{BaseSeed: 3, Seeds: 3, Duration: 6 * Hour, Scenario: ScenarioSIRAs}
	serial := base
	serial.Workers = 1
	wide := base
	wide.Workers = 4
	a, err := Sweep(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(wide)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Table2CI(), b.Table2CI()) {
		t.Error("Table 2 CI differs across worker counts")
	}
	if !reflect.DeepEqual(a.Table3CI(), b.Table3CI()) {
		t.Error("Table 3 CI differs across worker counts")
	}
	if !reflect.DeepEqual(a.DependabilityCI(), b.DependabilityCI()) {
		t.Error("dependability CI differs across worker counts")
	}
	if !reflect.DeepEqual(a.ScalarsCI(), b.ScalarsCI()) {
		t.Error("scalars CI differs across worker counts")
	}
}

// TestSweepEstimates sanity-checks the CI summaries: seed count recorded,
// nonzero data, means inside the per-seed envelope, and the renderers
// carrying the ± annotation.
func TestSweepEstimates(t *testing.T) {
	res, err := Sweep(SweepConfig{BaseSeed: 1, Seeds: 3, Duration: 6 * Hour,
		Scenario: ScenarioSIRAs, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	dep := res.DependabilityCI()
	if dep.Seeds != 3 || dep.MTTF.N != 3 {
		t.Fatalf("CI seed count: %+v", dep.MTTF)
	}
	lo, hi := 1e18, 0.0
	for _, r := range res.Runs {
		m := r.Dependability().MTTF
		if m <= 0 {
			t.Fatalf("seed %d: non-positive MTTF", r.Config.Seed)
		}
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if dep.MTTF.Mean < lo || dep.MTTF.Mean > hi {
		t.Errorf("MTTF mean %v outside per-seed envelope [%v, %v]", dep.MTTF.Mean, lo, hi)
	}
	if lo < hi && dep.MTTF.Half == 0 {
		t.Error("distinct per-seed MTTFs but zero CI half-width")
	}
	for _, rendered := range []string{
		res.Table2CI().Render(), res.Table3CI().Render(), dep.Render(),
	} {
		if !strings.Contains(rendered, "±") {
			t.Errorf("render lacks ± annotation:\n%s", rendered)
		}
	}
}

// TestSweepValidation pins config validation.
func TestSweepValidation(t *testing.T) {
	if _, err := Sweep(SweepConfig{Seeds: 0, Duration: Hour, Scenario: ScenarioSIRAs}); err == nil {
		t.Error("zero seeds accepted")
	}
	if _, err := Sweep(SweepConfig{Seeds: 1, Duration: 0, Scenario: ScenarioSIRAs}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Sweep(SweepConfig{Seeds: 1, Duration: Hour, Scenario: ScenarioSIRAs, Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
}
