package btpan

import (
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/sim"
)

// equivDuration is the equivalence suite's observation window. The streaming
// and scatternet equivalence tests compare runs of this exact duration
// against each other at a fixed seed, so -short (the CI race job) may shrink
// it without weakening the bit-identity claim — both sides shrink together.
func equivDuration() sim.Time {
	if testing.Short() {
		return 6 * Hour
	}
	return 1 * Day
}

// runEquiv runs one campaign with the given aggregation plane.
func runEquiv(t *testing.T, streaming bool, parallelism int, flush sim.Time) *CampaignResult {
	t.Helper()
	res, err := RunCampaign(CampaignConfig{
		Seed: 7, Duration: equivDuration(), Scenario: ScenarioSIRAsMasking,
		Streaming: streaming, Parallelism: parallelism, FlushEvery: flush,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// compareOutputs asserts every paper output of the two campaigns is
// bit-identical: Table 2, Table 3, the Table 4 column, Figures 3a/3b/3c/4
// and the §6 scalars, plus the dataset sizes. reflect.DeepEqual compares
// floats exactly — this is the acceptance bar for the streaming plane, not
// a tolerance check.
func compareOutputs(t *testing.T, label string, a, b *CampaignResult) {
	t.Helper()
	// Figure 3b's view at the aggregate's binning: streaming keeps the
	// histogram, retained recomputes it from raw reports.
	fig3b := func(r *CampaignResult) []analysis.Bar {
		if r.Agg != nil {
			return r.Agg.Fig3bBars()
		}
		return analysis.Fig3bConnectionAge(r.AllReports(), 1000, 10)
	}
	if !reflect.DeepEqual(fig3b(a), fig3b(b)) {
		t.Errorf("%s: Fig 3b diverges", label)
	}
	au, as, _ := a.DataItems()
	bu, bs, _ := b.DataItems()
	if au != bu || as != bs {
		t.Fatalf("%s: data items diverge: %d/%d vs %d/%d", label, au, as, bu, bs)
	}
	if !reflect.DeepEqual(a.Table2(), b.Table2()) {
		t.Errorf("%s: Table 2 diverges", label)
	}
	if !reflect.DeepEqual(a.Table3(), b.Table3()) {
		t.Errorf("%s: Table 3 diverges", label)
	}
	if !reflect.DeepEqual(a.Dependability(), b.Dependability()) {
		t.Errorf("%s: Table 4 column diverges:\n a %+v\n b %+v",
			label, a.Dependability(), b.Dependability())
	}
	if !reflect.DeepEqual(a.Fig3c(), b.Fig3c()) {
		t.Errorf("%s: Fig 3c diverges", label)
	}
	if !reflect.DeepEqual(a.Fig4(), b.Fig4()) {
		t.Errorf("%s: Fig 4 diverges", label)
	}
	if !reflect.DeepEqual(a.Fig3a(), b.Fig3a()) {
		t.Errorf("%s: Fig 3a diverges", label)
	}
	if !reflect.DeepEqual(a.Scalars(), b.Scalars()) {
		t.Errorf("%s: §6 scalars diverge:\n a %+v\n b %+v", label, a.Scalars(), b.Scalars())
	}
	// The taxonomy plane: the rendered tables are the acceptance surface, so
	// equality is asserted on the exact report bytes the -taxonomy flag
	// emits, not on a tolerance.
	horizon := a.Config.Duration
	if got, want := a.Taxonomy().Table(horizon).Render(), b.Taxonomy().Table(horizon).Render(); got != want {
		t.Errorf("%s: taxonomy table diverges:\n a:\n%s\n b:\n%s", label, got, want)
	}
	if got, want := a.Survival().Curve(horizon).Render(), b.Survival().Curve(horizon).Render(); got != want {
		t.Errorf("%s: survival curve diverges:\n a:\n%s\n b:\n%s", label, got, want)
	}
	if got, want := a.Survival().RenderInterarrival(40), b.Survival().RenderInterarrival(40); got != want {
		t.Errorf("%s: interarrival histogram diverges:\n a:\n%s\n b:\n%s", label, got, want)
	}
}

// TestStreamingEquivalence proves the streaming aggregation plane is
// behavior-preserving: on a fixed seed, a campaign whose records are folded
// into running aggregates as they stream off the nodes produces bit-identical
// Table 2/3/4 and §6 outputs to a campaign that retained every record. The
// masking scenario maximizes coverage (masked records exercise every skip
// path).
func TestStreamingEquivalence(t *testing.T) {
	retained := runEquiv(t, false, 0, 0)
	streaming := runEquiv(t, true, 0, 0)
	compareOutputs(t, "streaming vs retained", retained, streaming)

	// The simulation side is untouched by the collection plane: the
	// retained run still holds every record.
	if u, s, _ := retained.DataItems(); u == 0 || s == 0 {
		t.Fatalf("retained campaign collected no data (%d/%d)", u, s)
	}
	if streaming.Agg == nil {
		t.Fatal("streaming campaign has no aggregates")
	}
}

// TestStreamingFlushCadenceIrrelevant proves the aggregates do not depend on
// the drain cadence: minute-scale and half-day-scale flush intervals give
// identical outputs (tuple and radius state carries across drain
// boundaries).
func TestStreamingFlushCadenceIrrelevant(t *testing.T) {
	fine := runEquiv(t, true, 1, 10*Minute)
	coarse := runEquiv(t, true, 1, 12*Hour)
	compareOutputs(t, "10min vs 12h flush", fine, coarse)
}

// TestStreamingParallelMatchesSequential proves the watermark fold makes
// the two-goroutine streaming run deterministic: same outputs as the
// single-goroutine run.
func TestStreamingParallelMatchesSequential(t *testing.T) {
	par := runEquiv(t, true, 0, 0)
	seq := runEquiv(t, true, 1, 0)
	compareOutputs(t, "parallel vs sequential streaming", par, seq)
}
