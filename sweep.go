package btpan

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/analysis"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SweepConfig configures a multi-seed campaign sweep: N independent
// campaigns of the same duration and scenario, seeds BaseSeed..BaseSeed+N-1,
// run on a bounded worker pool. Per-seed campaigns stream by default, so a
// sweep's memory is O(workers), not O(seeds x duration), and every table
// comes back as mean ± 95 % confidence interval over the seeds.
type SweepConfig struct {
	// BaseSeed roots the sweep; seed i of N is BaseSeed + i.
	BaseSeed uint64
	// Seeds is the number of independent campaigns (>= 1).
	Seeds int
	// Duration is the virtual observation window per campaign.
	Duration sim.Time
	// Scenario selects the recovery regime for every campaign.
	Scenario Scenario
	// Workers bounds the campaign-level worker pool (each campaign runs
	// its two testbeds on goroutines of its own). 0 means NumCPU/2, at
	// least 1.
	Workers int
	// FlushEvery is the streaming drain cadence (default one virtual
	// hour).
	FlushEvery sim.Time
	// Retained switches the per-seed campaigns to the record-retaining
	// plane (debugging / raw-record analysis; memory grows with duration).
	Retained bool
	// CheckpointDir, when set, persists every completed seed's aggregates
	// (plus counters) as one JSON file in the directory and skips seeds
	// whose file already exists on a later run — an interrupted month-scale
	// sweep resumes instead of restarting, with CI tables bit-identical to
	// an uninterrupted sweep (the restored seeds answer through the same
	// aggregate code paths). Files carry the collector's torn-write guard
	// trailer: a sweep killed mid-write leaves a detectably-torn file that
	// the next run rejects in favor of the rotated previous copy (or simply
	// recomputes the seed). Streaming, non-scatternet sweeps only.
	CheckpointDir string
	// Piconets/Bridges/Topology/Redundancy/HoldTime switch the sweep to
	// scatternet campaigns: when any of them is set, every seed runs a
	// scatternet of that topology instead of a single-piconet campaign
	// (Piconets: 1, Bridges: 0 is the degenerate scatternet, bit-identical
	// to a classic sweep per seed). Runs then holds each seed's piconet-0
	// result (so every CI method keeps answering for the classic campaign
	// view) and Scatternets the full per-seed results for the per-piconet,
	// bridge-coupling, relay-depth and redundancy CIs. Topology and
	// Redundancy carry ScatternetConfig's semantics (built-in generator
	// name; K bridges per span).
	Piconets   int
	Bridges    int
	Topology   string
	Redundancy int
	HoldTime   sim.Time

	// randomMembers pins the materialized random membership map for the
	// whole sweep (set once by Sweep via materializeTopology): without it,
	// every seed's worker would regenerate — and re-validate — the same
	// RandomConnected graph inside the hot loop.
	randomMembers [][]int
}

// Scatternet reports whether the sweep runs scatternet campaigns (any
// explicit topology engages the scatternet path, so a 1-piconet request
// still populates Scatternets and the per-piconet CIs).
func (c SweepConfig) Scatternet() bool {
	return c.Piconets > 0 || c.Bridges > 0 || c.Topology != "" || c.Redundancy > 1
}

// scatternetConfig builds seed i's scatternet campaign config. A random
// topology is materialized once from the base seed and shared by every seed,
// so the sweep's CIs measure seed-to-seed variation of one graph rather than
// topology churn.
func (c SweepConfig) scatternetConfig(i int) ScatternetConfig {
	sc := ScatternetConfig{
		CampaignConfig: CampaignConfig{
			Seed:       c.BaseSeed + uint64(i),
			Duration:   c.Duration,
			Scenario:   c.Scenario,
			Streaming:  !c.Retained,
			FlushEvery: c.FlushEvery,
		},
		Piconets:   c.Piconets,
		Bridges:    c.Bridges,
		Topology:   c.Topology,
		Redundancy: c.Redundancy,
		HoldTime:   c.HoldTime,
	}
	if c.Topology == TopologyRandom {
		members := c.randomMembers
		if members == nil {
			// Sweep pins the map up front; this fallback covers direct
			// scatternetConfig callers (Validate's probe config).
			members = c.materializeTopology().randomMembers
		}
		if members != nil {
			// topology() already applied the redundancy replication.
			sc.Members, sc.Topology, sc.Redundancy = members, "", 0
		}
	}
	return sc
}

// materializeTopology resolves the shared random membership map once per
// sweep, from the base seed, so the per-seed workers reuse it instead of
// regenerating and re-validating the same graph in the hot loop (the CIs
// measure seed-to-seed variation of one graph either way — this only moves
// the generation out of the per-seed path). Non-random sweeps pass through
// unchanged.
func (c SweepConfig) materializeTopology() SweepConfig {
	if c.Topology != TopologyRandom || c.randomMembers != nil {
		return c
	}
	base := ScatternetConfig{
		CampaignConfig: CampaignConfig{Seed: c.BaseSeed, Duration: c.Duration, Scenario: c.Scenario},
		Piconets:       c.Piconets,
		Bridges:        c.Bridges,
		Topology:       c.Topology,
		Redundancy:     c.Redundancy,
	}
	if topo, err := base.topology(); err == nil {
		c.randomMembers = topo.Members
	}
	return c
}

// Validate reports configuration errors.
func (c SweepConfig) Validate() error {
	if c.Seeds < 1 {
		return fmt.Errorf("btpan: sweep needs at least one seed")
	}
	if c.Workers < 0 {
		return fmt.Errorf("btpan: negative sweep worker count")
	}
	if c.CheckpointDir != "" && (c.Retained || c.Scatternet()) {
		return fmt.Errorf("btpan: sweep checkpointing needs the streaming plane " +
			"(no -retained) and is not supported for scatternet sweeps")
	}
	if c.Scatternet() {
		return c.scatternetConfig(0).Validate()
	}
	probe := CampaignConfig{Seed: c.BaseSeed, Duration: c.Duration,
		Scenario: c.Scenario, FlushEvery: c.FlushEvery}
	return probe.Validate()
}

// SweepResult holds the per-seed campaigns, in seed order. In scatternet
// sweeps Runs holds each seed's piconet-0 result and Scatternets the full
// topology results.
type SweepResult struct {
	Config SweepConfig
	Runs   []*CampaignResult
	// Scatternets is non-nil only for scatternet sweeps (Config.Scatternet).
	Scatternets []*ScatternetResult
}

// Sweep runs the multi-seed campaign sweep. Results are deterministic for a
// given config: seed i always computes the same campaign no matter which
// worker runs it or in what order seeds finish.
func Sweep(cfg SweepConfig) (*SweepResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.materializeTopology()
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.NumCPU() / 2
	}
	if workers < 1 {
		workers = 1
	}
	if workers > cfg.Seeds {
		workers = cfg.Seeds
	}
	runs := make([]*CampaignResult, cfg.Seeds)
	var scatternets []*ScatternetResult
	if cfg.Scatternet() {
		scatternets = make([]*ScatternetResult, cfg.Seeds)
	}
	errs := make([]error, cfg.Seeds)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if cfg.Scatternet() {
					var res *ScatternetResult
					res, errs[i] = RunScatternet(cfg.scatternetConfig(i))
					if errs[i] == nil {
						scatternets[i] = res
						runs[i] = res.Piconets[0]
					}
					continue
				}
				ccfg := CampaignConfig{
					Seed:       cfg.BaseSeed + uint64(i),
					Duration:   cfg.Duration,
					Scenario:   cfg.Scenario,
					Streaming:  !cfg.Retained,
					FlushEvery: cfg.FlushEvery,
				}
				if cfg.CheckpointDir != "" {
					if res, err := loadSeedCheckpoint(cfg.CheckpointDir, ccfg); err != nil {
						errs[i] = err
						continue
					} else if res != nil {
						runs[i] = res
						continue
					}
				}
				runs[i], errs[i] = RunCampaign(ccfg)
				if errs[i] == nil && cfg.CheckpointDir != "" {
					errs[i] = saveSeedCheckpoint(cfg.CheckpointDir, runs[i])
				}
			}
		}()
	}
	for i := range runs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &SweepResult{Config: cfg, Runs: runs, Scatternets: scatternets}, nil
}

// Table2CI summarizes the sweep's error-failure relationship tables.
func (s *SweepResult) Table2CI() *analysis.Table2CI {
	tables := make([]*analysis.Table2, len(s.Runs))
	for i, r := range s.Runs {
		tables[i] = r.Table2()
	}
	return analysis.BuildTable2CI(tables)
}

// Table3CI summarizes the sweep's SIRA effectiveness tables.
func (s *SweepResult) Table3CI() *analysis.Table3CI {
	tables := make([]*analysis.Table3, len(s.Runs))
	for i, r := range s.Runs {
		tables[i] = r.Table3()
	}
	return analysis.BuildTable3CI(tables)
}

// DependabilityCI summarizes the sweep's Table 4 column (the configured
// scenario).
func (s *SweepResult) DependabilityCI() *analysis.DependabilityCI {
	cols := make([]*analysis.Dependability, len(s.Runs))
	for i, r := range s.Runs {
		cols[i] = r.Dependability()
	}
	return analysis.BuildDependabilityCI(cols)
}

// ScalarsCI summarizes the sweep's §6 scalar findings.
func (s *SweepResult) ScalarsCI() *analysis.ScalarsCI {
	all := make([]*analysis.Scalars, len(s.Runs))
	for i, r := range s.Runs {
		all[i] = r.Scalars()
	}
	return analysis.BuildScalarsCI(all)
}

// TaxonomyCI summarizes the sweep's taxonomy/survival plane: per-phase
// failure counts, the dynamic-availability share and the mean failure
// interarrival as mean ± 95 % CI over the seeds.
func (s *SweepResult) TaxonomyCI() *analysis.TaxonomyCI {
	taxes := make([]*analysis.TaxonomyAccum, len(s.Runs))
	survs := make([]*analysis.SurvivalAccum, len(s.Runs))
	for i, r := range s.Runs {
		taxes[i] = r.Taxonomy()
		survs[i] = r.Survival()
	}
	return analysis.BuildTaxonomyCI(taxes, survs)
}

// PiconetDependabilityCI summarizes piconet p's Table 4 column over the
// seeds of a scatternet sweep (nil when the sweep was not a scatternet or p
// is out of range).
func (s *SweepResult) PiconetDependabilityCI(p int) *analysis.DependabilityCI {
	if s.Scatternets == nil {
		return nil
	}
	cols := make([]*analysis.Dependability, 0, len(s.Scatternets))
	for _, r := range s.Scatternets {
		if p < 0 || p >= len(r.Piconets) {
			return nil
		}
		cols = append(cols, r.Piconets[p].Dependability())
	}
	return analysis.BuildDependabilityCI(cols)
}

// CorrelatedOutagesCI estimates the per-seed count of correlated
// piconet-level outages bridge failures caused (zero estimate when the
// sweep was not a scatternet).
func (s *SweepResult) CorrelatedOutagesCI() stats.Estimate {
	xs := make([]float64, 0, len(s.Scatternets))
	for _, r := range s.Scatternets {
		xs = append(xs, float64(r.Bridges.CorrelatedOutages()))
	}
	return stats.CI95(xs)
}

// BridgeDowntimeCI estimates the per-seed total bridge downtime in seconds
// (zero estimate when the sweep was not a scatternet).
func (s *SweepResult) BridgeDowntimeCI() stats.Estimate {
	xs := make([]float64, 0, len(s.Scatternets))
	for _, r := range s.Scatternets {
		xs = append(xs, r.Bridges.TotalDowntimeSeconds())
	}
	return stats.CI95(xs)
}

// RelayDepthCI summarizes the sweep's delay-vs-relay-depth tables: per-depth
// probe counts and mean store-and-forward delays as mean ± 95 % CI over the
// seeds (nil when the sweep was not a scatternet).
func (s *SweepResult) RelayDepthCI() *analysis.RelayDepthCI {
	if s.Scatternets == nil {
		return nil
	}
	accs := make([]*analysis.RelayDepthAccum, len(s.Scatternets))
	for i, r := range s.Scatternets {
		accs[i] = r.RelayDepth
	}
	return analysis.BuildRelayDepthCI(accs)
}

// RedundancyCI summarizes the sweep's redundancy tables: per-seed member
// outages, all-down episodes and all-down seconds as mean ± 95 % CI (nil
// when the sweep was not a scatternet).
func (s *SweepResult) RedundancyCI() *analysis.RedundancyCI {
	if s.Scatternets == nil {
		return nil
	}
	tables := make([]*analysis.RedundancyTable, len(s.Scatternets))
	for i, r := range s.Scatternets {
		tables[i] = r.Redundancy
	}
	return analysis.BuildRedundancyCI(tables)
}

// SweepTable4 runs one sweep per recovery scenario (same seeds and
// duration) and assembles the four-column dependability comparison with
// confidence intervals — the paper's Table 4 with error bars.
func SweepTable4(cfg SweepConfig) (*analysis.Table4CI, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t4 := &analysis.Table4CI{}
	for _, sc := range recovery.Scenarios() {
		scCfg := cfg
		scCfg.Scenario = sc
		res, err := Sweep(scCfg)
		if err != nil {
			return nil, err
		}
		t4.Columns = append(t4.Columns, res.DependabilityCI())
	}
	return t4, nil
}
